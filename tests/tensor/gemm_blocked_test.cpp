// gemm_blocked_test.cpp — the cache-blocked micro-kernel GEMM against a naive
// i-k-j oracle. The sweep crosses every M,K,N over sizes straddling the MR/NR
// micro-tile (8), the MC block (128 is out of reach, but 63/64/65 cover panel
// raggedness) and single-element edges, so every ragged panel and partial
// micro-tile path is exercised. All comparisons are exact bit-equality:
// serial blocked vs oracle, and threaded blocked vs serial blocked.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "tensor/gemm_kernel.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace pdnn::tensor {
namespace {

struct GemmShape {
  std::size_t m, k, n;
};

/// Naive i-k-j GEMM, C += A*B: one multiply-then-add per element in ascending
/// k order — the accumulation-order contract the blocked kernel must match
/// bit for bit.
void naive_gemm_acc(std::size_t m, std::size_t n, std::size_t k, const float* a, const float* b,
                    float* c) {
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = a[i * k + kk];
      for (std::size_t j = 0; j < n; ++j) c[i * n + j] += aik * b[kk * n + j];
    }
}

bool bits_equal(const std::vector<float>& x, const std::vector<float>& y) {
  return x.size() == y.size() && std::memcmp(x.data(), y.data(), x.size() * sizeof(float)) == 0;
}

void set_threads(int t) {
#ifdef _OPENMP
  omp_set_num_threads(t);
#else
  (void)t;
#endif
}

int max_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

TEST(GemmBlocked, RaggedShapeSweepBitIdenticalToOracle) {
  const std::size_t sizes[] = {1, 2, 3, 7, 8, 9, 15, 16, 17, 63, 64, 65};
  Rng rng(21);
  const int restore = max_threads();
  for (const std::size_t m : sizes)
    for (const std::size_t k : sizes)
      for (const std::size_t n : sizes) {
        std::vector<float> a(m * k), b(k * n);
        for (auto& v : a) v = static_cast<float>(rng.normal());
        for (auto& v : b) v = static_cast<float>(rng.normal());
        // Non-zero C start: accumulation must respect existing contents.
        std::vector<float> seed(m * n);
        for (auto& v : seed) v = static_cast<float>(rng.normal());

        std::vector<float> want = seed;
        naive_gemm_acc(m, n, k, a.data(), b.data(), want.data());

        set_threads(1);
        std::vector<float> serial = seed;
        gemm_blocked(m, n, k, a.data(), k, b.data(), n, serial.data(), n);
        ASSERT_TRUE(bits_equal(want, serial))
            << "serial blocked diverged from naive oracle at " << m << "x" << k << "x" << n;

        for (int t = 2; t <= 4; ++t) {
          set_threads(t);
          std::vector<float> threaded = seed;
          gemm_blocked(m, n, k, a.data(), k, b.data(), n, threaded.data(), n);
          ASSERT_TRUE(bits_equal(serial, threaded))
              << t << "-thread blocked diverged from serial at " << m << "x" << k << "x" << n;
        }
        set_threads(restore);
      }
}

TEST(GemmBlocked, CacheBlockBoundariesBitIdenticalToOracle) {
  // The small sweep never crosses MC=128, KC=256, or NC=1024, so the
  // C store/reload between KC slices and the multi-block packing paths need
  // their own shapes: one element below, on, and above each block boundary.
  const GemmShape shapes[] = {
      {127, 255, 1030},  // below MC/KC, above NC
      {130, 260, 1025},  // just above every boundary (ragged final blocks)
      {256, 513, 64},    // exact MC multiple, two KC slices + ragged third
  };
  Rng rng(25);
  const int restore = max_threads();
  for (const auto& s : shapes) {
    std::vector<float> a(s.m * s.k), b(s.k * s.n), seed(s.m * s.n);
    for (auto& v : a) v = static_cast<float>(rng.normal());
    for (auto& v : b) v = static_cast<float>(rng.normal());
    for (auto& v : seed) v = static_cast<float>(rng.normal());

    std::vector<float> want = seed;
    naive_gemm_acc(s.m, s.n, s.k, a.data(), b.data(), want.data());

    set_threads(1);
    std::vector<float> serial = seed;
    gemm_blocked(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n, serial.data(), s.n);
    ASSERT_TRUE(bits_equal(want, serial))
        << "serial blocked diverged from oracle at " << s.m << "x" << s.k << "x" << s.n;

    for (int t = 2; t <= 4; ++t) {
      set_threads(t);
      std::vector<float> threaded = seed;
      gemm_blocked(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n, threaded.data(), s.n);
      ASSERT_TRUE(bits_equal(serial, threaded))
          << t << "-thread blocked diverged from serial at " << s.m << "x" << s.k << "x" << s.n;
    }
    set_threads(restore);
  }
}

TEST(GemmBlocked, LeadingDimensionsAddressSubmatrices) {
  // C, A, B embedded in larger row-major buffers: the kernel must honor
  // lda/ldb/ldc instead of assuming contiguity.
  const std::size_t m = 13, k = 21, n = 11;
  const std::size_t lda = 30, ldb = 29, ldc = 27;
  Rng rng(22);
  std::vector<float> a(m * lda), b(k * ldb), c(m * ldc, 0.0f);
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());

  gemm_blocked(m, n, k, a.data(), lda, b.data(), ldb, c.data(), ldc);

  // Compact the operands and compare against the naive oracle.
  std::vector<float> ac(m * k), bc(k * n), want(m * n, 0.0f);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t kk = 0; kk < k; ++kk) ac[i * k + kk] = a[i * lda + kk];
  for (std::size_t kk = 0; kk < k; ++kk)
    for (std::size_t j = 0; j < n; ++j) bc[kk * n + j] = b[kk * ldb + j];
  naive_gemm_acc(m, n, k, ac.data(), bc.data(), want.data());
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_EQ(want[i * n + j], c[i * ldc + j]) << "C[" << i << "," << j << "]";
  // Padding between rows of C must be untouched.
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = n; j < ldc; ++j) EXPECT_EQ(0.0f, c[i * ldc + j]);
}

TEST(GemmBlocked, MatmulAccRoutesThroughBlockedKernel) {
  // matmul_acc and gemm_blocked must be the same computation (the tensor API
  // is a shape-checked wrapper).
  Rng rng(23);
  const std::size_t m = 65, k = 129, n = 63;
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);
  Tensor c({m, n});
  matmul_acc(a, b, c);
  std::vector<float> raw(m * n, 0.0f);
  gemm_blocked(m, n, k, a.data(), k, b.data(), n, raw.data(), n);
  EXPECT_EQ(0, std::memcmp(c.data(), raw.data(), raw.size() * sizeof(float)));
}

TEST(GemmBlocked, DegenerateDimensionsAreNoOps) {
  std::vector<float> c(4, 1.5f);
  gemm_blocked(0, 2, 2, nullptr, 2, nullptr, 2, c.data(), 2);
  gemm_blocked(2, 0, 2, nullptr, 2, nullptr, 0, c.data(), 2);
  gemm_blocked(2, 2, 0, nullptr, 0, nullptr, 2, c.data(), 2);
  for (const float v : c) EXPECT_EQ(1.5f, v);
}

TEST(MatmulAcc, RejectsIncompatibleShapes) {
  Rng rng(24);
  const Tensor a = Tensor::randn({4, 5}, rng);
  const Tensor b = Tensor::randn({5, 6}, rng);

  Tensor bad_inner({6, 6});
  Tensor c({4, 6});
  EXPECT_THROW(matmul_acc(a, bad_inner, c), std::invalid_argument);

  Tensor bad_rows({3, 6});
  EXPECT_THROW(matmul_acc(a, b, bad_rows), std::invalid_argument);

  Tensor bad_cols({4, 7});
  EXPECT_THROW(matmul_acc(a, b, bad_cols), std::invalid_argument);

  // Rank violations: matmul_acc used to trust callers to pass matrices.
  Tensor vec({5});
  EXPECT_THROW(matmul_acc(a, vec, c), std::invalid_argument);
  Tensor cube({4, 5, 6});
  EXPECT_THROW(matmul_acc(cube, b, c), std::invalid_argument);
  Tensor cvec({24});
  EXPECT_THROW(matmul_acc(a, b, cvec), std::invalid_argument);

  // And the valid call still works after all those rejections.
  EXPECT_NO_THROW(matmul_acc(a, b, c));
}

TEST(GemmBlocked, PackScratchShrinksAfterLargeGemmWithoutChangingBits) {
  // The thread_local packing buffers are bounded: a worker that once packed a
  // wide B panel (KC*NC floats) must give that memory back once traffic turns
  // small for good — and the shrink must not perturb a single output bit.
  // The release is hysteretic (a sustained streak of small needs, so loops
  // alternating large/small GEMMs never realloc-thrash), hence the loop of
  // small calls below rather than a single one.
  const int restore = max_threads();
  set_threads(1);  // keep all packing on this thread so gemm_pack_bytes sees it

  const std::size_t small_m = 8, small_n = 8, small_k = 8;
  Rng rng(5150);
  std::vector<float> sa(small_m * small_k), sb(small_k * small_n);
  for (float& v : sa) v = static_cast<float>(rng.normal());
  for (float& v : sb) v = static_cast<float>(rng.normal());

  // Drain any capacity earlier tests left behind: a long run of small GEMMs
  // rides out the shrink hysteresis and settles the scratch at its small-need
  // baseline before the measurements below.
  std::vector<float> before(small_m * small_n, 0.0f);
  for (int i = 0; i < 100; ++i) {
    std::fill(before.begin(), before.end(), 0.0f);
    gemm_blocked(small_m, small_n, small_k, sa.data(), small_k, sb.data(), small_n, before.data(),
                 small_n);
  }
  const std::size_t small_bytes = gemm_pack_bytes();
  EXPECT_GT(small_bytes, 0u);

  // Full-width B block: bp grows to its KC*NC cap.
  const std::size_t big_m = 8, big_n = GemmBlocking::NC, big_k = GemmBlocking::KC;
  std::vector<float> ba(big_m * big_k, 1.0f), bb(big_k * big_n, 1.0f);
  std::vector<float> bc(big_m * big_n, 0.0f);
  gemm_blocked(big_m, big_n, big_k, ba.data(), big_k, bb.data(), big_n, bc.data(), big_n);
  const std::size_t peak_bytes = gemm_pack_bytes();
  EXPECT_GT(peak_bytes, small_bytes);

  // The immediate next small GEMM keeps the peak (hysteresis: one small call
  // is not "traffic turned small") and computes bit-identical results.
  std::vector<float> after(small_m * small_n, 0.0f);
  gemm_blocked(small_m, small_n, small_k, sa.data(), small_k, sb.data(), small_n, after.data(),
               small_n);
  EXPECT_EQ(gemm_pack_bytes(), peak_bytes);
  EXPECT_TRUE(bits_equal(before, after));

  // A sustained run of small GEMMs releases the peak capacity...
  for (int i = 0; i < 100; ++i) {
    std::fill(after.begin(), after.end(), 0.0f);
    gemm_blocked(small_m, small_n, small_k, sa.data(), small_k, sb.data(), small_n, after.data(),
                 small_n);
  }
  EXPECT_LT(gemm_pack_bytes(), peak_bytes / 2);
  // ...and still computes bit-identical results through the shrunken scratch.
  EXPECT_TRUE(bits_equal(before, after));

  set_threads(restore);
}

/// Reference epilogue: the exact per-element expression the fused kernel
/// applies after an element's accumulation completes — add row bias, add
/// column bias, clamp. Branching on pointer presence (instead of adding 0.0f)
/// matters: an unconditional +0.0f would flip -0.0 to +0.0.
void naive_epilogue(std::size_t m, std::size_t n, float* c, std::size_t ldc, const float* rb,
                    const float* cb, bool relu) {
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      float v = c[i * ldc + j];
      if (rb != nullptr) v += rb[i];
      if (cb != nullptr) v += cb[j];
      if (relu) v = v > 0.0f ? v : 0.0f;
      c[i * ldc + j] = v;
    }
}

TEST(GemmBlocked, EpilogueSweepBitIdenticalToOracle) {
  // Every epilogue combination over shapes straddling the micro-tile: the
  // fused bias/relu must equal accumulate-then-sweep exactly, serial and
  // threaded (each thread owns whole row panels, so the epilogue never races).
  const std::size_t sizes[] = {1, 7, 8, 9, 65};
  Rng rng(31);
  const int restore = max_threads();
  for (const std::size_t m : sizes)
    for (const std::size_t k : sizes)
      for (const std::size_t n : sizes) {
        std::vector<float> a(m * k), b(k * n), seed(m * n), rb(m), cb(n);
        for (auto& v : a) v = static_cast<float>(rng.normal());
        for (auto& v : b) v = static_cast<float>(rng.normal());
        for (auto& v : seed) v = static_cast<float>(rng.normal());
        for (auto& v : rb) v = static_cast<float>(rng.normal());
        for (auto& v : cb) v = static_cast<float>(rng.normal());

        const GemmEpilogue combos[] = {
            {rb.data(), nullptr, false},
            {nullptr, cb.data(), false},
            {nullptr, nullptr, true},
            {rb.data(), cb.data(), true},
        };
        for (const GemmEpilogue& ep : combos) {
          std::vector<float> want = seed;
          naive_gemm_acc(m, n, k, a.data(), b.data(), want.data());
          naive_epilogue(m, n, want.data(), n, ep.row_bias, ep.col_bias, ep.relu);

          set_threads(1);
          std::vector<float> serial = seed;
          gemm_blocked(m, n, k, a.data(), k, b.data(), n, serial.data(), n, ep);
          ASSERT_TRUE(bits_equal(want, serial))
              << "serial epilogue diverged at " << m << "x" << k << "x" << n;

          set_threads(4);
          std::vector<float> threaded = seed;
          gemm_blocked(m, n, k, a.data(), k, b.data(), n, threaded.data(), n, ep);
          ASSERT_TRUE(bits_equal(serial, threaded))
              << "threaded epilogue diverged at " << m << "x" << k << "x" << n;
          set_threads(restore);
        }
      }
}

TEST(GemmBlocked, EpilogueAppliesOnceAcrossKcSlices) {
  // k spans multiple KC slices: C is stored and reloaded between slices, so
  // the epilogue must fire only after the FINAL slice — firing per slice
  // would add the bias (and clamp) repeatedly.
  const std::size_t m = 17, n = 33, k = 2 * GemmBlocking::KC + 37;
  Rng rng(37);
  std::vector<float> a(m * k), b(k * n), seed(m * n), rb(m), cb(n);
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());
  for (auto& v : seed) v = static_cast<float>(rng.normal());
  for (auto& v : rb) v = static_cast<float>(rng.normal());
  for (auto& v : cb) v = static_cast<float>(rng.normal());
  const GemmEpilogue ep{rb.data(), cb.data(), true};

  std::vector<float> want = seed;
  naive_gemm_acc(m, n, k, a.data(), b.data(), want.data());
  naive_epilogue(m, n, want.data(), n, ep.row_bias, ep.col_bias, ep.relu);

  const int restore = max_threads();
  set_threads(1);
  std::vector<float> got = seed;
  gemm_blocked(m, n, k, a.data(), k, b.data(), n, got.data(), n, ep);
  EXPECT_TRUE(bits_equal(want, got));
  set_threads(restore);
}

TEST(GemmBlocked, EpilogueOnZeroKAppliesOverSeededC) {
  // k == 0 contributes nothing to the accumulation, but the epilogue is still
  // owed: bias + clamp over whatever C held. Seed includes negatives (clamped
  // to zero) and a NaN (the v > 0 ? v : 0 expression maps NaN to 0, matching
  // the standalone relu kernel).
  const std::size_t m = 3, n = 4;
  std::vector<float> seed = {-1.0f, 2.0f, -0.5f, std::nanf(""),  //
                             0.25f, -3.0f, 4.0f, -0.0f,          //
                             1.5f,  0.0f,  -2.0f, 7.0f};
  std::vector<float> rb = {0.5f, -1.0f, 0.0f};
  std::vector<float> cb = {0.0f, 1.0f, -0.25f, 2.0f};
  const GemmEpilogue ep{rb.data(), cb.data(), true};

  std::vector<float> want = seed;
  naive_epilogue(m, n, want.data(), n, ep.row_bias, ep.col_bias, ep.relu);
  std::vector<float> got = seed;
  gemm_blocked(m, n, 0, nullptr, 0, nullptr, n, got.data(), n, ep);
  EXPECT_TRUE(bits_equal(want, got));

  // Degenerate m/n with an active epilogue stay no-ops.
  std::vector<float> untouched(4, 1.5f);
  gemm_blocked(0, 2, 2, nullptr, 2, nullptr, 2, untouched.data(), 2, ep);
  for (const float v : untouched) EXPECT_EQ(1.5f, v);
}

TEST(GemmBlocked, ReportsKernelFlavor) {
  // Smoke test: the query must be callable; either flavor is legal, and both
  // produce identical bits (locked in by the sweep above on whichever kernel
  // this host dispatches to).
  const bool vectorized = gemm_kernel_vectorized();
  (void)vectorized;
  SUCCEED();
}

}  // namespace
}  // namespace pdnn::tensor
