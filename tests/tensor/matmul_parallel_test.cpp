// matmul_parallel_test.cpp — the threaded dense kernels must be bit-identical
// to a single-thread reference for any shape, including ragged ones that
// don't divide evenly across threads.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace pdnn::tensor {
namespace {

/// Plain triple loop in the same i-k-j order as matmul_acc — the serial
/// reference the threaded kernel must reproduce exactly.
Tensor matmul_reference(const Tensor& a, const Tensor& b) {
  const std::size_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = a.at(i, kk);
      if (aik == 0.0f) continue;
      for (std::size_t j = 0; j < n; ++j) c.at(i, j) += aik * b.at(kk, j);
    }
  return c;
}

bool bit_identical(const Tensor& x, const Tensor& y) {
  return x.shape() == y.shape() &&
         std::memcmp(x.data(), y.data(), x.numel() * sizeof(float)) == 0;
}

int saved_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

void set_threads(int n) {
#ifdef _OPENMP
  omp_set_num_threads(n);
#else
  (void)n;
#endif
}

/// Runs `fn()` once per thread count in {1, 2, 3, 4} and checks every result
/// against the single-thread one, bit for bit.
template <typename Fn>
void expect_thread_invariant(Fn&& fn, const char* what) {
  const int restore = saved_threads();
  set_threads(1);
  const Tensor reference = fn();
  for (int t = 2; t <= 4; ++t) {
    set_threads(t);
    const Tensor got = fn();
    EXPECT_TRUE(bit_identical(reference, got))
        << what << ": " << t << "-thread result diverged from single-thread";
  }
  set_threads(restore);
}

TEST(MatmulParallel, RaggedShapesBitIdenticalToReference) {
  const std::size_t sizes[] = {1, 7, 64, 129};
  const int restore = saved_threads();
  Rng rng(11);
  for (const std::size_t m : sizes)
    for (const std::size_t k : sizes)
      for (const std::size_t n : sizes) {
        const Tensor a = Tensor::randn({m, k}, rng);
        const Tensor b = Tensor::randn({k, n}, rng);
        const Tensor want = matmul_reference(a, b);
        expect_thread_invariant([&] { return matmul(a, b); }, "matmul");
        set_threads(4);
        const Tensor got = matmul(a, b);
        EXPECT_TRUE(bit_identical(want, got))
            << "matmul " << m << "x" << k << "x" << n << " diverged from naive reference";
        set_threads(restore);
      }
}

TEST(MatmulParallel, AccumulateIntoNonZeroOutput) {
  Rng rng(12);
  const Tensor a = Tensor::randn({129, 65}, rng);
  const Tensor b = Tensor::randn({65, 129}, rng);
  const Tensor seed_c = Tensor::randn({129, 129}, rng);
  expect_thread_invariant(
      [&] {
        Tensor c = seed_c;
        matmul_acc(a, b, c);
        return c;
      },
      "matmul_acc");
}

TEST(MatmulParallel, LargeSquareMatchesSerial) {
  Rng rng(13);
  const Tensor a = Tensor::randn({256, 256}, rng);
  const Tensor b = Tensor::randn({256, 256}, rng);
  expect_thread_invariant([&] { return matmul(a, b); }, "matmul-256");
}

TEST(MatmulParallel, ConvForwardBitIdenticalAcrossThreads) {
  Rng rng(14);
  // Ragged batch and channel counts; odd image size; stride 2 included.
  const struct {
    std::size_t batch, in_c, hw, out_c, kernel, stride, pad;
  } cases[] = {
      {1, 3, 13, 5, 3, 1, 1},
      {3, 7, 9, 11, 3, 2, 1},
      {5, 4, 16, 8, 1, 1, 0},
      {7, 2, 8, 3, 5, 1, 2},
  };
  for (const auto& tc : cases) {
    const Conv2dGeom g{tc.in_c, tc.hw, tc.hw, tc.out_c, tc.kernel, tc.stride, tc.pad};
    const Tensor input = Tensor::randn({tc.batch, tc.in_c, tc.hw, tc.hw}, rng);
    const Tensor weight = Tensor::randn({tc.out_c, tc.in_c, tc.kernel, tc.kernel}, rng);
    expect_thread_invariant([&] { return conv2d_forward(input, weight, g); }, "conv2d_forward");
  }
}

TEST(MatmulParallel, ConvBackwardBitIdenticalAcrossThreads) {
  Rng rng(15);
  const Conv2dGeom g{4, 10, 10, 6, 3, 1, 1};
  const Tensor input = Tensor::randn({3, 4, 10, 10}, rng);
  const Tensor weight = Tensor::randn({6, 4, 3, 3}, rng);
  const Tensor grad_out = Tensor::randn({3, 6, g.out_h(), g.out_w()}, rng);

  const int restore = saved_threads();
  set_threads(1);
  Tensor gw_ref = Tensor::zeros(weight.shape());
  const Tensor gx_ref = conv2d_backward(input, weight, grad_out, g, gw_ref);
  for (int t = 2; t <= 4; ++t) {
    set_threads(t);
    Tensor gw = Tensor::zeros(weight.shape());
    const Tensor gx = conv2d_backward(input, weight, grad_out, g, gw);
    EXPECT_TRUE(bit_identical(gx_ref, gx)) << t << "-thread grad_input diverged";
    EXPECT_TRUE(bit_identical(gw_ref, gw)) << t << "-thread grad_weight diverged";
  }
  set_threads(restore);
}

}  // namespace
}  // namespace pdnn::tensor
