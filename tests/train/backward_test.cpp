// backward_test.cpp — the compiled training path (FloatBackend
// compile_training / train_forward / run_backward) against the eager
// Module::forward(training)/backward chain: finite-difference gradient
// checks, bit-equality on 40+ randomized nested graphs (including N = 0 and
// batch-shape changes), BN running-stat commit parity, zero-heap-allocation
// steady state, and the training-API misuse throws.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "exec/float_backend.hpp"
#include "graph_gen.hpp"
#include "nn/layers.hpp"
#include "nn/resnet.hpp"
#include "tensor/ops.hpp"

// ---------------------------------------------------------------------------
// Counting allocator (same scheme as float_backend_test): every C++ heap
// allocation funnels through here, so "zero allocations during steady-state
// train_forward + run_backward" is a plain counter delta.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace pdnn::exec {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

bool bit_identical(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         (a.numel() == 0 || std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)) == 0);
}

bool bit_identical(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

void collect_bns(nn::Module& m, std::vector<nn::BatchNorm2d*>& out) {
  if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(&m)) out.push_back(bn);
  for (nn::Module* c : m.children()) collect_bns(*c, out);
}

/// One eager training step on `net`: zero grads, training forward, backward.
Tensor eager_step(nn::Module& net, const Tensor& x, const Tensor& grad_out, Tensor& out) {
  for (nn::Param* p : net.params()) p->zero_grad();
  out = net.forward(x, /*training=*/true);
  return net.backward(grad_out);
}

/// Compiled counterpart on a compile_training backend, committing BN stats
/// (the eager forward folds them in-line; the backend defers to the caller).
const Tensor& plan_step(FloatBackend& b, const Tensor& x, const Tensor& grad_out, Tensor& out) {
  b.zero_grad();
  out = b.train_forward(x);
  b.commit_bn_stats();
  return b.run_backward(grad_out);
}

void expect_steps_match(nn::Module& eager_net, FloatBackend& b, const Tensor& x,
                        const Tensor& grad_out, const std::string& ctx) {
  Tensor eager_out, plan_out;
  const Tensor eager_gin = eager_step(eager_net, x, grad_out, eager_out);
  const Tensor& plan_gin = plan_step(b, x, grad_out, plan_out);
  EXPECT_TRUE(bit_identical(eager_out, plan_out)) << ctx << ": forward outputs differ";
  EXPECT_TRUE(bit_identical(eager_gin, plan_gin)) << ctx << ": input gradients differ";

  const std::vector<nn::Param*> eager_params = eager_net.params();
  const std::vector<Tensor>& plan_grads = b.param_grads();
  ASSERT_EQ(eager_params.size(), plan_grads.size()) << ctx;
  for (std::size_t i = 0; i < eager_params.size(); ++i) {
    EXPECT_TRUE(bit_identical(eager_params[i]->grad, plan_grads[i]))
        << ctx << ": grad of param " << i << " (" << eager_params[i]->name << ") differs";
  }
}

void expect_bn_stats_match(nn::Module& eager_net, nn::Module& plan_net, const std::string& ctx) {
  std::vector<nn::BatchNorm2d*> a, c;
  collect_bns(eager_net, a);
  collect_bns(plan_net, c);
  ASSERT_EQ(a.size(), c.size()) << ctx;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(bit_identical(a[i]->running_mean(), c[i]->running_mean()))
        << ctx << ": running_mean of bn " << i << " differs";
    EXPECT_TRUE(bit_identical(a[i]->running_var(), c[i]->running_var()))
        << ctx << ": running_var of bn " << i << " differs";
  }
}

// ---------------------------------------------------------------------------
// Finite-difference gradient checks
// ---------------------------------------------------------------------------

float loss_of(FloatBackend& b, const Tensor& x, const std::vector<int>& labels) {
  return tensor::cross_entropy(b.train_forward(x), labels, nullptr);
}

/// Central-difference check of d(loss)/d(param[j]) against the compiled
/// backward, for a handful of entries per parameter tensor.
void fd_check(nn::Module& net, const Tensor& x, const std::vector<int>& labels) {
  FloatBackend b = FloatBackend::compile_training(net);
  b.zero_grad();
  const Tensor& logits = b.train_forward(x);
  Tensor dlogits;
  tensor::cross_entropy(logits, labels, &dlogits);
  b.run_backward(dlogits);

  const std::vector<nn::Param*> params = b.trained_params();
  const std::vector<Tensor>& grads = b.param_grads();
  // Small enough to sit inside the local linear patch (ReLU/maxpool kinks,
  // BN curvature); large enough that FP32 loss noise stays below tol.
  const float h = 1e-3f;
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    nn::Param& p = *params[pi];
    const std::size_t probes[] = {0, p.value.numel() / 2, p.value.numel() - 1};
    for (const std::size_t j : probes) {
      const float orig = p.value[j];
      p.value[j] = orig + h;
      p.mark_updated();
      const float lp = loss_of(b, x, labels);
      p.value[j] = orig - h;
      p.mark_updated();
      const float lm = loss_of(b, x, labels);
      p.value[j] = orig;
      p.mark_updated();
      const float fd = (lp - lm) / (2.0f * h);
      const float got = grads[pi][j];
      const float tol = std::max(5e-2f * std::fabs(fd), 2e-3f);
      EXPECT_NEAR(got, fd, tol) << "param " << p.name << " entry " << j;
    }
  }
}

TEST(TrainBackward, FiniteDifferenceMlp) {
  Rng rng(11);
  auto net = nn::mlp(5, 8, 3, 2, rng);
  const Tensor x = Tensor::randn({4, 5}, rng);
  const std::vector<int> labels = {0, 2, 1, 2};
  fd_check(*net, x, labels);
}

TEST(TrainBackward, FiniteDifferenceConvBnPool) {
  Rng rng(13);
  nn::Sequential net("net");
  net.add(std::make_unique<nn::Conv2d>("conv", 2, 3, 3, 1, 1, rng, /*with_bias=*/true));
  net.add(std::make_unique<nn::BatchNorm2d>("bn", 3));
  net.add(std::make_unique<nn::ReLU>("relu"));
  net.add(std::make_unique<nn::MaxPool2x2>("pool"));
  net.add(std::make_unique<nn::GlobalAvgPool>("gap"));
  net.add(std::make_unique<nn::Linear>("head", 3, 3, rng));
  const Tensor x = Tensor::randn({3, 2, 4, 4}, rng);
  const std::vector<int> labels = {1, 0, 2};
  fd_check(net, x, labels);
}

TEST(TrainBackward, FiniteDifferenceResidual) {
  Rng rng(17);
  nn::Sequential net("net");
  net.add(std::make_unique<nn::ResidualBlock>("res", 2, 4, 2, rng));
  net.add(std::make_unique<nn::GlobalAvgPool>("gap"));
  net.add(std::make_unique<nn::Linear>("head", 4, 3, rng));
  const Tensor x = Tensor::randn({3, 2, 4, 4}, rng);
  const std::vector<int> labels = {2, 1, 0};
  fd_check(net, x, labels);
}

// ---------------------------------------------------------------------------
// Eager-vs-plan bit-equality on randomized graphs
// ---------------------------------------------------------------------------

TEST(TrainBackward, RandomizedGraphsBitIdenticalToEager) {
  for (std::uint64_t trial = 0; trial < 42; ++trial) {
    const std::uint64_t seed = 5000 + trial * 31;
    // Two identically seeded nets: A walks the eager chain (which mutates
    // Param::grad and module caches), B is compiled.
    Rng rng_a(seed), rng_b(seed);
    const std::size_t batch = 1 + trial % 3;
    exec_test::RandomNet a = exec_test::random_cnn(rng_a, batch);
    exec_test::RandomNet c = exec_test::random_cnn(rng_b, batch);
    FloatBackend b = FloatBackend::compile_training(*c.net);

    Rng data_rng(seed ^ 0x9e3779b9);
    const Tensor x = Tensor::randn(a.input_shape, data_rng);
    Tensor probe_out = a.net->forward(x, /*training=*/false);
    const Shape gshape{batch, probe_out.shape()[1]};
    const std::string ctx = "trial " + std::to_string(trial);

    const Tensor g1 = Tensor::randn(gshape, data_rng);
    expect_steps_match(*a.net, b, x, g1, ctx + " batch 1");
    expect_bn_stats_match(*a.net, *c.net, ctx + " after batch 1");

    // Batch-shape change through the same compiled backend.
    const std::size_t batch2 = batch + 1 + trial % 2;
    const Tensor x2 =
        Tensor::randn({batch2, a.input_shape[1], a.input_shape[2], a.input_shape[3]}, data_rng);
    const Tensor g2 = Tensor::randn({batch2, gshape[1]}, data_rng);
    expect_steps_match(*a.net, b, x2, g2, ctx + " batch 2 (reshaped)");
    expect_bn_stats_match(*a.net, *c.net, ctx + " after batch 2");

    // Every few trials, push an N = 0 batch through both paths: identical
    // degenerate expressions (BN's 0/0 included) must yield identical bits.
    if (trial % 5 == 0) {
      const Tensor x0(Shape{0, a.input_shape[1], a.input_shape[2], a.input_shape[3]});
      const Tensor g0(Shape{0, gshape[1]});
      expect_steps_match(*a.net, b, x0, g0, ctx + " batch 3 (N=0)");
      expect_bn_stats_match(*a.net, *c.net, ctx + " after batch 3");
    }
  }
}

TEST(TrainBackward, GradientsAccumulateAcrossCallsLikeEager) {
  const std::uint64_t seed = 99;
  Rng rng_a(seed), rng_b(seed);
  exec_test::RandomNet a = exec_test::random_cnn(rng_a, 2);
  exec_test::RandomNet c = exec_test::random_cnn(rng_b, 2);
  FloatBackend b = FloatBackend::compile_training(*c.net);

  Rng data_rng(4242);
  const Tensor x = Tensor::randn(a.input_shape, data_rng);
  Tensor out = a.net->forward(x, /*training=*/false);
  const Tensor g = Tensor::randn({2, out.shape()[1]}, data_rng);

  // Two backward passes WITHOUT zero_grad in between: grads double up on
  // both paths (the eager Param::grad += contract).
  for (nn::Param* p : a.net->params()) p->zero_grad();
  b.zero_grad();
  for (int pass = 0; pass < 2; ++pass) {
    a.net->forward(x, /*training=*/true);
    a.net->backward(g);
    b.train_forward(x);
    b.commit_bn_stats();
    b.run_backward(g);
  }
  const std::vector<nn::Param*> eager_params = a.net->params();
  for (std::size_t i = 0; i < eager_params.size(); ++i) {
    EXPECT_TRUE(bit_identical(eager_params[i]->grad, b.param_grads()[i])) << "param " << i;
  }
}

// ---------------------------------------------------------------------------
// Steady-state allocation and misuse
// ---------------------------------------------------------------------------

TEST(TrainBackward, SteadyStateTrainingStepIsAllocationFree) {
  Rng rng(7);
  nn::ResNetConfig rc;
  rc.blocks_per_stage = 1;
  rc.base_channels = 4;
  rc.classes = 4;
  auto net = nn::cifar_resnet(rc, rng);
  FloatBackend b = FloatBackend::compile_training(*net);

  const Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  const Tensor g = Tensor::randn({2, 4}, rng);
  for (int warm = 0; warm < 2; ++warm) {
    b.zero_grad();
    b.train_forward(x);
    b.commit_bn_stats();
    b.run_backward(g);
  }
  const std::uint64_t before = g_heap_allocs.load();
  for (int r = 0; r < 5; ++r) {
    b.zero_grad();
    b.train_forward(x);
    b.commit_bn_stats();
    b.run_backward(g);
  }
  EXPECT_EQ(g_heap_allocs.load(), before)
      << "steady-state train_forward/run_backward must not touch the heap\n"
      << b.plan().dump(b.arena_bytes());
}

TEST(TrainBackward, WeightUpdateBetweenStepsRefreshesWithoutDrift) {
  // A weight mutation (Param::mark_updated) between steps must re-derive the
  // cached panels: the next compiled step equals a freshly compiled one.
  const std::uint64_t seed = 1234;
  Rng rng_a(seed), rng_b(seed);
  exec_test::RandomNet a = exec_test::random_cnn(rng_a, 2);
  exec_test::RandomNet c = exec_test::random_cnn(rng_b, 2);
  FloatBackend b = FloatBackend::compile_training(*c.net);

  Rng data_rng(77);
  const Tensor x = Tensor::randn(a.input_shape, data_rng);
  Tensor out = a.net->forward(x, /*training=*/false);
  const Tensor g = Tensor::randn({2, out.shape()[1]}, data_rng);
  expect_steps_match(*a.net, b, x, g, "before update");

  // Perturb every parameter identically on both nets (an SGD step stand-in).
  const auto perturb = [](std::vector<nn::Param*> params) {
    for (nn::Param* p : params) {
      for (std::size_t j = 0; j < p->value.numel(); ++j) {
        p->value[j] += 0.01f * static_cast<float>(j % 7);
      }
      p->mark_updated();
    }
  };
  perturb(a.net->params());
  perturb(c.net->params());
  expect_steps_match(*a.net, b, x, g, "after update");
}

TEST(TrainBackward, TrainingApiMisuseThrows) {
  Rng rng(7);
  auto net = nn::mlp(6, 10, 3, 2, rng);
  const Tensor x = Tensor::randn({2, 6}, rng);

  FloatBackend inference = FloatBackend::compile(*net);
  EXPECT_THROW(inference.train_forward(x), std::logic_error);
  EXPECT_THROW(inference.run_backward(x), std::logic_error);
  EXPECT_THROW(inference.commit_bn_stats(), std::logic_error);

  FloatBackend training = FloatBackend::compile_training(*net);
  // Backward before any forward.
  EXPECT_THROW(training.run_backward(Tensor::zeros({2, 3})), std::logic_error);
  EXPECT_THROW(training.commit_bn_stats(), std::logic_error);
  training.train_forward(x);
  // grad_out shape must match the forward output.
  EXPECT_THROW(training.run_backward(Tensor::zeros({2, 4})), std::invalid_argument);
  EXPECT_THROW(training.run_backward(Tensor::zeros({3, 3})), std::invalid_argument);
  EXPECT_NO_THROW(training.run_backward(Tensor::zeros({2, 3})));
  // run() still works on a training backend (eval-mode forward).
  EXPECT_NO_THROW(training.run(x));
}

}  // namespace
}  // namespace pdnn::exec
