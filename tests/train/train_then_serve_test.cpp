// train_then_serve_test.cpp — regression for the weight-version contract
// across the training boundary: eval backends and serve::Engines compiled
// BEFORE training must observe the trained weights afterwards (every
// mutation site — SgdMomentum::step, BN running-stat commits — bumps
// Param::version / stats_version, and the cached panels re-derive from
// those), producing outputs bit-identical to a freshly compiled backend.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <vector>

#include "exec/float_backend.hpp"
#include "nn/resnet.hpp"
#include "serve/engine.hpp"
#include "tensor/ops.hpp"
#include "train/trainer.hpp"

namespace pdnn::train {
namespace {

using exec::FloatBackend;
using tensor::Rng;
using tensor::Tensor;

bool bit_identical(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         (a.numel() == 0 || std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)) == 0);
}

TEST(TrainThenServe, StaleBackendsSeeTrainedWeights) {
  Rng rng(91);
  nn::ResNetConfig rc;
  rc.blocks_per_stage = 1;
  rc.base_channels = 4;
  rc.classes = 3;
  auto net = nn::cifar_resnet(rc, rng);

  // Warm BN stats so the pre-training eval path is nontrivial.
  const Tensor warm = Tensor::randn({4, 3, 8, 8}, rng);
  net->forward(warm, /*training=*/true);

  // Compiled BEFORE training: panels bound to the untrained versions.
  FloatBackend stale = FloatBackend::compile(*net);
  serve::EngineConfig ecfg;
  ecfg.workers = 2;
  ecfg.max_batch = 4;
  ecfg.batch_timeout = std::chrono::microseconds(200);
  serve::Engine engine(stale, ecfg);

  const Tensor probe = Tensor::randn({2, 3, 8, 8}, rng);
  const Tensor before = stale.run(probe);  // bind panels pre-training
  ASSERT_EQ(before.shape(), (tensor::Shape{2, 3}));

  TrainerConfig cfg;
  cfg.batch_size = 6;
  cfg.micro_batch = 3;
  cfg.workers = 2;
  cfg.sgd.lr = 0.05f;
  Trainer trainer(*net, cfg);
  const Tensor bx = Tensor::randn({6, 3, 8, 8}, rng);
  const std::vector<int> by = {0, 1, 2, 2, 1, 0};
  for (int s = 0; s < 3; ++s) trainer.step(bx, by);

  // The trained weights (Param::version bumped by SgdMomentum::step) and BN
  // running stats (stats_version bumped by update_running_stats) must flow
  // into the stale backend's panels on its next run.
  FloatBackend fresh = FloatBackend::compile(*net);
  const Tensor want = fresh.run(probe);
  EXPECT_FALSE(bit_identical(before, want)) << "training did not change the model";
  EXPECT_TRUE(bit_identical(stale.run(probe), want))
      << "pre-training backend served stale weights after training";

  // Engine workers cloned pre-training must agree too.
  Tensor sample;
  tensor::extract_sample(probe, 0, sample);
  const Tensor served = engine.submit(sample).get();
  Tensor want_row;
  tensor::extract_sample(want, 0, want_row);
  EXPECT_TRUE(bit_identical(served, want_row))
      << "pre-training engine clone served stale weights after training";
  engine.shutdown();
}

TEST(TrainThenServe, EvalThroughTrainingBackendMatchesFreshCompile) {
  // run() on the training backend itself is the eval forward; after training
  // it must agree with a freshly compiled plain backend (training plans keep
  // bias epilogues but run no fusion passes, which preserve bits anyway).
  Rng rng(92);
  auto net = nn::mlp(6, 12, 3, 2, rng);

  TrainerConfig cfg;
  cfg.batch_size = 4;
  cfg.workers = 1;
  Trainer trainer(*net, cfg);
  const Tensor bx = Tensor::randn({4, 6}, rng);
  const std::vector<int> by = {0, 1, 2, 1};
  for (int s = 0; s < 2; ++s) trainer.step(bx, by);

  FloatBackend training = FloatBackend::compile_training(*net);
  FloatBackend fresh = FloatBackend::compile(*net, nullptr, exec::PlanOptions::none());
  const Tensor probe = Tensor::randn({3, 6}, rng);
  EXPECT_TRUE(bit_identical(training.run(probe), fresh.run(probe)));
}

}  // namespace
}  // namespace pdnn::train
