// trainer_test.cpp — train::Trainer determinism and correctness: trained
// parameters bit-identical across 1/2/4 workers at fixed micro-batch,
// single-shard steps bit-identical to the manual eager loop, shard-count
// metrics aggregation, fit()'s epoch loop, and batch-validation throws.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "nn/layers.hpp"
#include "nn/optimizer.hpp"
#include "nn/resnet.hpp"
#include "tensor/ops.hpp"
#include "train/trainer.hpp"

namespace pdnn::train {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

bool bit_identical(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         (a.numel() == 0 || std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)) == 0);
}

bool bit_identical(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

void collect_bns(nn::Module& m, std::vector<nn::BatchNorm2d*>& out) {
  if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(&m)) out.push_back(bn);
  for (nn::Module* c : m.children()) collect_bns(*c, out);
}

void expect_nets_identical(nn::Module& a, nn::Module& b, const std::string& ctx) {
  const std::vector<nn::Param*> pa = a.params();
  const std::vector<nn::Param*> pb = b.params();
  ASSERT_EQ(pa.size(), pb.size()) << ctx;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(bit_identical(pa[i]->value, pb[i]->value))
        << ctx << ": param " << i << " (" << pa[i]->name << ") differs";
  }
  std::vector<nn::BatchNorm2d*> ba, bb;
  collect_bns(a, ba);
  collect_bns(b, bb);
  ASSERT_EQ(ba.size(), bb.size()) << ctx;
  for (std::size_t i = 0; i < ba.size(); ++i) {
    EXPECT_TRUE(bit_identical(ba[i]->running_mean(), bb[i]->running_mean()))
        << ctx << ": bn " << i << " running_mean differs";
    EXPECT_TRUE(bit_identical(ba[i]->running_var(), bb[i]->running_var()))
        << ctx << ": bn " << i << " running_var differs";
  }
}

std::unique_ptr<nn::Sequential> seeded_cnn(std::uint64_t seed) {
  Rng rng(seed);
  nn::Sequential* net = new nn::Sequential("net");
  net->add(std::make_unique<nn::Conv2d>("conv", 2, 4, 3, 1, 1, rng, /*with_bias=*/true));
  net->add(std::make_unique<nn::BatchNorm2d>("bn", 4));
  net->add(std::make_unique<nn::ReLU>("relu"));
  net->add(std::make_unique<nn::ResidualBlock>("res", 4, 4, 1, rng));
  net->add(std::make_unique<nn::MaxPool2x2>("pool"));
  net->add(std::make_unique<nn::GlobalAvgPool>("gap"));
  net->add(std::make_unique<nn::Linear>("head", 4, 3, rng));
  return std::unique_ptr<nn::Sequential>(net);
}

TEST(TrainTrainer, ParamsBitIdenticalAcrossWorkerCounts) {
  // Three identically seeded nets; only `workers` differs. The micro-batch
  // (2 samples) defines the numerics, so the trained bits must agree.
  auto n1 = seeded_cnn(21), n2 = seeded_cnn(21), n4 = seeded_cnn(21);

  Rng data_rng(500);
  const Tensor bx = Tensor::randn({8, 2, 8, 8}, data_rng);
  const std::vector<int> by = {0, 1, 2, 0, 1, 2, 0, 1};

  const auto train_with = [&](nn::Sequential& net, std::size_t workers) {
    TrainerConfig cfg;
    cfg.batch_size = 8;
    cfg.micro_batch = 2;
    cfg.workers = workers;
    cfg.sgd.lr = 0.05f;
    Trainer t(net, cfg);
    StepStats last;
    for (int s = 0; s < 3; ++s) last = t.step(bx, by);
    return last;
  };
  const StepStats s1 = train_with(*n1, 1);
  const StepStats s2 = train_with(*n2, 2);
  const StepStats s4 = train_with(*n4, 4);

  expect_nets_identical(*n1, *n2, "1 vs 2 workers");
  expect_nets_identical(*n1, *n4, "1 vs 4 workers");
  EXPECT_EQ(s1.correct, s2.correct);
  EXPECT_EQ(s1.correct, s4.correct);
  EXPECT_DOUBLE_EQ(s1.loss_sum, s2.loss_sum);
  EXPECT_DOUBLE_EQ(s1.loss_sum, s4.loss_sum);
  EXPECT_EQ(s1.count, 8u);
}

TEST(TrainTrainer, SingleShardStepBitIdenticalToEagerLoop) {
  // micro_batch == batch_size (one shard): every expression matches the
  // manual eager loop — same loss, same gradients, same SGD update, same BN
  // running stats.
  auto eager_net = seeded_cnn(33);
  auto plan_net = seeded_cnn(33);

  Rng data_rng(600);
  const Tensor bx = Tensor::randn({4, 2, 8, 8}, data_rng);
  const std::vector<int> by = {2, 0, 1, 2};

  nn::SgdConfig sgd;
  sgd.lr = 0.1f;
  sgd.weight_decay = 5e-4f;
  nn::SgdMomentum opt(eager_net->params(), sgd);

  TrainerConfig cfg;
  cfg.batch_size = 4;
  cfg.workers = 1;
  cfg.sgd = sgd;
  Trainer trainer(*plan_net, cfg);

  for (int s = 0; s < 3; ++s) {
    opt.zero_grad();
    const Tensor logits = eager_net->forward(bx, /*training=*/true);
    Tensor dlogits;
    const float eager_loss = tensor::cross_entropy(logits, by, &dlogits);
    eager_net->backward(dlogits);
    opt.step();

    const StepStats st = trainer.step(bx, by);
    EXPECT_FLOAT_EQ(static_cast<float>(st.loss_sum / static_cast<double>(st.count)), eager_loss)
        << "step " << s;
    expect_nets_identical(*eager_net, *plan_net, "after step " + std::to_string(s));
  }
}

TEST(TrainTrainer, UnevenTailShardAndMlpInputs) {
  // 5 samples at micro_batch 2 -> shards of 2, 2, 1; rank-2 (MLP) batches
  // shard through the same extract_span path.
  Rng rng(44);
  auto n1 = nn::mlp(6, 10, 3, 2, rng);
  Rng rng2(44);
  auto n2 = nn::mlp(6, 10, 3, 2, rng2);

  Rng data_rng(700);
  const Tensor bx = Tensor::randn({5, 6}, data_rng);
  const std::vector<int> by = {0, 1, 2, 1, 0};

  const auto train_with = [&](nn::Sequential& net, std::size_t workers) {
    TrainerConfig cfg;
    cfg.batch_size = 6;
    cfg.micro_batch = 2;
    cfg.workers = workers;
    Trainer t(net, cfg);
    for (int s = 0; s < 2; ++s) t.step(bx, by);
  };
  train_with(*n1, 1);
  train_with(*n2, 3);
  expect_nets_identical(*n1, *n2, "1 vs 3 workers, uneven tail");
}

TEST(TrainTrainer, FitRunsEpochsAndEvaluates) {
  Rng rng(55);
  auto net = nn::mlp(4, 8, 2, 2, rng);

  Rng data_rng(800);
  const std::size_t n = 24;
  Tensor xs({n, 4});
  std::vector<int> ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(i % 2);
    for (std::size_t j = 0; j < 4; ++j) {
      xs.at(i, j) = static_cast<float>(data_rng.normal(cls == 0 ? -1.0 : 1.0, 0.25));
    }
    ys[i] = cls;
  }

  TrainerConfig cfg;
  cfg.epochs = 4;
  cfg.batch_size = 8;
  cfg.micro_batch = 4;
  cfg.workers = 2;
  cfg.sgd.lr = 0.1f;
  cfg.schedule.base_lr = 0.1f;
  cfg.schedule.drop_epochs = {3};
  Trainer trainer(*net, cfg);
  const std::vector<EpochResult> history = trainer.fit(xs, ys, xs, ys);

  ASSERT_EQ(history.size(), 4u);
  EXPECT_FLOAT_EQ(history[0].lr, 0.1f);
  EXPECT_FLOAT_EQ(history[3].lr, 0.01f);
  // A linearly separable toy set: training must reach high accuracy.
  EXPECT_GE(history.back().test_acc, 0.9f);
  EXPECT_GE(trainer.evaluate(xs, ys), 0.9f);
  EXPECT_GT(trainer.arena_bytes(), 0u);
  EXPECT_EQ(trainer.workers(), 2u);
}

TEST(TrainTrainer, DegenerateBatchesThrow) {
  Rng rng(66);
  auto net = nn::mlp(4, 8, 2, 2, rng);
  TrainerConfig cfg;
  cfg.batch_size = 4;
  Trainer t(*net, cfg);

  EXPECT_THROW(t.step(Tensor(), {}), std::invalid_argument);
  EXPECT_THROW(t.step(Tensor::zeros({0, 4}), {}), std::invalid_argument);
  EXPECT_THROW(t.step(Tensor::zeros({2, 4}), {0}), std::invalid_argument);
  EXPECT_THROW(t.step(Tensor::zeros({8, 4}), std::vector<int>(8, 0)), std::invalid_argument);

  TrainerConfig bad;
  bad.batch_size = 0;
  EXPECT_THROW(Trainer(*net, bad), std::invalid_argument);
}

}  // namespace
}  // namespace pdnn::train
