// fast_arith_test.cpp — log-depth arithmetic blocks vs their simple
// counterparts, and netlist dead-logic elimination.
#include <gtest/gtest.h>

#include <random>

#include "hw/analysis.hpp"
#include "hw/components.hpp"

namespace pdnn::hw {
namespace {

std::vector<std::uint8_t> pack_bits(std::uint64_t v, int width) {
  std::vector<std::uint8_t> out(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) out[static_cast<std::size_t>(i)] = (v >> i) & 1u;
  return out;
}

TEST(KoggeStone, ExhaustiveSmall) {
  Netlist nl;
  const Bus a = nl.input_bus("a", 5);
  const Bus b = nl.input_bus("b", 5);
  const NetId cin = nl.input("cin");
  const SumCarry sc = kogge_stone_adder(nl, a, b, cin);
  nl.mark_output_bus(sc.sum, "sum");
  nl.mark_output(sc.carry_out, "cout");
  for (std::uint64_t av = 0; av < 32; ++av) {
    for (std::uint64_t bv = 0; bv < 32; ++bv) {
      for (std::uint64_t cv = 0; cv < 2; ++cv) {
        auto in = pack_bits(av, 5);
        const auto bb = pack_bits(bv, 5);
        in.insert(in.end(), bb.begin(), bb.end());
        in.push_back(static_cast<std::uint8_t>(cv));
        const auto vals = nl.evaluate(in);
        const std::uint64_t want = av + bv + cv;
        ASSERT_EQ(bus_value(sc.sum, vals), want & 31u);
        ASSERT_EQ(vals[static_cast<std::size_t>(sc.carry_out)], (want >> 5) & 1u);
      }
    }
  }
}

TEST(KoggeStone, MatchesRippleOnRandomWide) {
  Netlist nl;
  const Bus a = nl.input_bus("a", 32);
  const Bus b = nl.input_bus("b", 32);
  const SumCarry ks = kogge_stone_adder(nl, a, b, nl.constant(false));
  const SumCarry rp = ripple_adder(nl, a, b, nl.constant(false));
  nl.mark_output_bus(ks.sum, "ks");
  nl.mark_output_bus(rp.sum, "rp");
  std::mt19937_64 rng(1);
  for (int t = 0; t < 2000; ++t) {
    const std::uint64_t av = rng() & 0xFFFFFFFFu;
    const std::uint64_t bv = rng() & 0xFFFFFFFFu;
    auto in = pack_bits(av, 32);
    const auto bb = pack_bits(bv, 32);
    in.insert(in.end(), bb.begin(), bb.end());
    const auto vals = nl.evaluate(in);
    ASSERT_EQ(bus_value(ks.sum, vals), bus_value(rp.sum, vals));
    ASSERT_EQ(bus_value(ks.sum, vals), (av + bv) & 0xFFFFFFFFu);
  }
}

TEST(KoggeStone, LogDepthBeatsRippleDelay) {
  const auto delay = [](bool kogge, int width) {
    Netlist nl;
    const Bus a = nl.input_bus("a", width);
    const Bus b = nl.input_bus("b", width);
    const SumCarry sc = kogge ? kogge_stone_adder(nl, a, b, nl.constant(false))
                              : ripple_adder(nl, a, b, nl.constant(false));
    nl.mark_output_bus(sc.sum, "s");
    nl.mark_output(sc.carry_out, "c");
    return analyze_timing(nl).critical_delay_ns;
  };
  EXPECT_LT(delay(true, 32), delay(false, 32) * 0.5);
  EXPECT_LT(delay(true, 16), delay(false, 16));
}

TEST(PrefixIncrementer, MatchesRippleExhaustive) {
  Netlist nl;
  const Bus a = nl.input_bus("a", 7);
  const NetId inc = nl.input("inc");
  nl.mark_output_bus(prefix_incrementer(nl, a, inc), "p");
  nl.mark_output_bus(incrementer(nl, a, inc), "r");
  for (std::uint64_t av = 0; av < 128; ++av) {
    for (std::uint64_t iv = 0; iv < 2; ++iv) {
      auto in = pack_bits(av, 7);
      in.push_back(static_cast<std::uint8_t>(iv));
      const auto vals = nl.evaluate(in);
      const std::uint64_t out = nl.outputs_as_u64(vals);
      ASSERT_EQ(out & 0x7Fu, (av + iv) & 0x7Fu);
      ASSERT_EQ((out >> 7) & 0x7Fu, (av + iv) & 0x7Fu);
    }
  }
}

TEST(PrefixAndScan, Exhaustive) {
  Netlist nl;
  const Bus a = nl.input_bus("a", 6);
  nl.mark_output_bus(prefix_and_scan(nl, a), "p");
  for (std::uint64_t av = 0; av < 64; ++av) {
    const auto vals = nl.evaluate(pack_bits(av, 6));
    const std::uint64_t out = nl.outputs_as_u64(vals);
    std::uint64_t want = 0;
    bool all = true;
    for (int i = 0; i < 6; ++i) {
      all = all && ((av >> i) & 1u);
      want |= static_cast<std::uint64_t>(all) << i;
    }
    ASSERT_EQ(out, want) << av;
  }
}

TEST(Wallace, MatchesArrayMultiplier) {
  Netlist nl;
  const Bus a = nl.input_bus("a", 9);
  const Bus b = nl.input_bus("b", 9);
  nl.mark_output_bus(wallace_multiplier(nl, a, b), "w");
  nl.mark_output_bus(array_multiplier(nl, a, b), "arr");
  std::mt19937_64 rng(5);
  for (int t = 0; t < 3000; ++t) {
    const std::uint64_t av = rng() & 0x1FF;
    const std::uint64_t bv = rng() & 0x1FF;
    auto in = pack_bits(av, 9);
    const auto bb = pack_bits(bv, 9);
    in.insert(in.end(), bb.begin(), bb.end());
    const auto vals = nl.evaluate(in);
    const std::uint64_t out = nl.outputs_as_u64(vals);
    ASSERT_EQ(out & 0x3FFFFu, av * bv);
    ASSERT_EQ((out >> 18) & 0x3FFFFu, av * bv);
  }
}

TEST(Wallace, ExhaustiveSmall) {
  Netlist nl;
  const Bus a = nl.input_bus("a", 4);
  const Bus b = nl.input_bus("b", 4);
  nl.mark_output_bus(wallace_multiplier(nl, a, b), "w");
  for (std::uint64_t av = 0; av < 16; ++av) {
    for (std::uint64_t bv = 0; bv < 16; ++bv) {
      auto in = pack_bits(av, 4);
      const auto bb = pack_bits(bv, 4);
      in.insert(in.end(), bb.begin(), bb.end());
      ASSERT_EQ(nl.outputs_as_u64(nl.evaluate(in)), av * bv);
    }
  }
}

TEST(Wallace, FasterThanArrayForWideOperands) {
  const auto delay = [](bool wallace) {
    Netlist nl;
    const Bus a = nl.input_bus("a", 16);
    const Bus b = nl.input_bus("b", 16);
    nl.mark_output_bus(wallace ? wallace_multiplier(nl, a, b) : array_multiplier(nl, a, b), "p");
    return analyze_timing(nl).critical_delay_ns;
  };
  EXPECT_LT(delay(true), delay(false) * 0.6);
}

TEST(Prune, PreservesFunctionRemovesDeadLogic) {
  Netlist nl;
  const Bus a = nl.input_bus("a", 8);
  const Bus b = nl.input_bus("b", 8);
  const SumCarry sum = ripple_adder(nl, a, b, nl.constant(false));
  (void)array_multiplier(nl, a, b);  // dead: result never marked
  nl.mark_output_bus(sum.sum, "s");

  const Netlist pruned = nl.pruned();
  EXPECT_LT(pruned.gate_count(), nl.gate_count() / 2) << "the multiplier must be eliminated";
  EXPECT_EQ(pruned.inputs().size(), nl.inputs().size()) << "inputs preserved";

  std::mt19937_64 rng(9);
  for (int t = 0; t < 500; ++t) {
    std::vector<std::uint8_t> in(16);
    for (auto& v : in) v = static_cast<std::uint8_t>(rng() & 1u);
    ASSERT_EQ(nl.outputs_as_u64(nl.evaluate(in)), pruned.outputs_as_u64(pruned.evaluate(in)));
  }
}

TEST(Prune, TimingNeverWorsens) {
  Netlist nl;
  const Bus a = nl.input_bus("a", 12);
  const Bus b = nl.input_bus("b", 12);
  const Bus p = wallace_multiplier(nl, a, b);
  nl.mark_output_bus(Bus(p.begin(), p.begin() + 12), "low");  // only low half used
  const double before = analyze_timing(nl).critical_delay_ns;
  const Netlist pruned = nl.pruned();
  EXPECT_LE(analyze_timing(pruned).critical_delay_ns, before + 1e-12);
  EXPECT_LT(pruned.total_area_um2(), nl.total_area_um2());
}

}  // namespace
}  // namespace pdnn::hw
