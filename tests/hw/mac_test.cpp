// mac_test.cpp — FP MAC and full posit MAC functional + cost-shape tests.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "hw/analysis.hpp"
#include "hw/posit_mac.hpp"
#include "posit/arith.hpp"

namespace pdnn::hw {
namespace {

// ---------------------------------------------------------------------------
// FP MAC functional model harness.
// ---------------------------------------------------------------------------
struct FpHarness {
  FpFormat fmt;
  Netlist nl;
  FpOperand a, b, c;
  FpResult z;

  explicit FpHarness(FpFormat f) : fmt(f) {
    const auto mk = [&](const std::string& name) {
      FpOperand op;
      op.sign = nl.input(name + "s");
      op.is_zero = nl.input(name + "z");
      op.exp = nl.input_bus(name + "e", fmt.exp_width);
      op.frac = nl.input_bus(name + "f", fmt.frac_width);
      return op;
    };
    a = mk("a");
    b = mk("b");
    c = mk("c");
    z = build_fp_mac(nl, fmt, a, b, c);
    nl.mark_output(z.sign, "zs");
    nl.mark_output(z.is_zero, "zz");
    nl.mark_output_bus(z.exp, "ze");
    nl.mark_output_bus(z.frac, "zf");
  }

  // Encode a real value as (sign, exp, frac) — value must be representable.
  static void encode(double v, const FpFormat& fmt, bool* sign, std::int64_t* exp, std::uint64_t* frac,
                     bool* zero) {
    if (v == 0.0) {
      *zero = true;
      *sign = false;
      *exp = 0;
      *frac = 0;
      return;
    }
    *zero = false;
    *sign = v < 0;
    int e = 0;
    const double m = std::frexp(std::fabs(v), &e);
    *exp = e - 1;
    *frac = static_cast<std::uint64_t>(std::ldexp(m, fmt.frac_width + 1)) & ((1ull << fmt.frac_width) - 1);
  }

  double run(double av, double bv, double cv) {
    std::vector<std::uint8_t> in;
    const auto push_op = [&](double v) {
      bool s = false, zero = false;
      std::int64_t e = 0;
      std::uint64_t f = 0;
      encode(v, fmt, &s, &e, &f, &zero);
      in.push_back(s);
      in.push_back(zero);
      for (int i = 0; i < fmt.exp_width; ++i) in.push_back((static_cast<std::uint64_t>(e) >> i) & 1u);
      for (int i = 0; i < fmt.frac_width; ++i) in.push_back((f >> i) & 1u);
    };
    push_op(av);
    push_op(bv);
    push_op(cv);
    const auto vals = nl.evaluate(in);
    if (vals[static_cast<std::size_t>(z.is_zero)]) return 0.0;
    const bool s = vals[static_cast<std::size_t>(z.sign)] != 0;
    std::uint64_t e = bus_value(z.exp, vals);
    const int ew = static_cast<int>(z.exp.size());
    if (e & (1ull << (ew - 1))) e |= ~((1ull << ew) - 1);
    const std::uint64_t f = bus_value(z.frac, vals);
    const double mant = 1.0 + std::ldexp(static_cast<double>(f), -fmt.frac_width);
    const double mag = std::ldexp(mant, static_cast<int>(static_cast<std::int64_t>(e)));
    return s ? -mag : mag;
  }
};

TEST(FpMac, ExactSmallIntegerCases) {
  FpHarness h(FpFormat{8, 10});
  EXPECT_DOUBLE_EQ(h.run(2.0, 3.0, 4.0), 10.0);
  EXPECT_DOUBLE_EQ(h.run(1.0, 1.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.run(-2.0, 3.0, 10.0), 4.0);
  EXPECT_DOUBLE_EQ(h.run(2.0, -3.0, -4.0), -10.0);
  EXPECT_DOUBLE_EQ(h.run(0.5, 0.5, 0.75), 1.0);
  EXPECT_DOUBLE_EQ(h.run(1.5, 2.0, 1.0), 4.0);
}

TEST(FpMac, ZeroHandling) {
  FpHarness h(FpFormat{8, 10});
  EXPECT_DOUBLE_EQ(h.run(0.0, 5.0, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(h.run(5.0, 0.0, -3.0), -3.0);
  EXPECT_DOUBLE_EQ(h.run(2.0, 3.0, 0.0), 6.0);
  EXPECT_DOUBLE_EQ(h.run(0.0, 0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.run(2.0, -1.0, 2.0), 0.0);  // exact cancellation
}

TEST(FpMac, RandomWithinTruncationError) {
  FpHarness h(FpFormat{9, 12});
  std::mt19937_64 rng(17);
  std::uniform_real_distribution<double> dist(-8.0, 8.0);
  for (int t = 0; t < 300; ++t) {
    // Use values representable in 12 fraction bits to keep inputs exact.
    const auto snap = [&](double v) { return std::ldexp(std::round(std::ldexp(v, 8)), -8); };
    const double av = snap(dist(rng));
    const double bv = snap(dist(rng));
    const double cv = snap(dist(rng));
    const double want = av * bv + cv;
    const double got = h.run(av, bv, cv);
    if (want == 0.0) {
      EXPECT_NEAR(got, 0.0, 1e-3);
    } else {
      // Truncation rounding: up to a few ulps of relative error.
      EXPECT_NEAR(got, want, std::fabs(want) * 1e-2 + 1e-4) << av << "*" << bv << "+" << cv;
    }
  }
}

// ---------------------------------------------------------------------------
// Full posit MAC vs the software posit pipeline.
// ---------------------------------------------------------------------------
struct PositMacHarness {
  PositHwSpec spec;
  Netlist nl;
  PositMacPorts ports;

  PositMacHarness(int n, int es, bool optimized) : spec{n, es} {
    ports = build_posit_mac(nl, spec, optimized);
    nl.mark_output_bus(ports.z, "z");
  }

  std::uint32_t run(std::uint32_t a, std::uint32_t b, std::uint32_t c) {
    std::vector<std::uint8_t> in;
    for (const std::uint32_t v : {a, b, c}) {
      for (int i = 0; i < spec.n; ++i) in.push_back((v >> i) & 1u);
    }
    return static_cast<std::uint32_t>(bus_value(ports.z, nl.evaluate(in)));
  }
};

class PositMacTest : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(PositMacTest, MatchesSoftwareOnRandomVectors) {
  const auto [n, es, optimized] = GetParam();
  PositMacHarness hw(n, es, optimized);
  const posit::PositSpec sw{n, es};
  std::mt19937_64 rng(23);
  int exact = 0, total = 0;
  for (int t = 0; t < 1500; ++t) {
    const auto a = static_cast<std::uint32_t>(rng() & sw.mask());
    const auto b = static_cast<std::uint32_t>(rng() & sw.mask());
    const auto c = static_cast<std::uint32_t>(rng() & sw.mask());
    if (a == sw.nar_code() || b == sw.nar_code() || c == sw.nar_code()) continue;
    const std::uint32_t got = hw.run(a, b, c);
    // Reference: correctly rounded (toward zero) fused a*b+c.
    const std::uint32_t want = posit::fma(a, b, c, sw, posit::RoundMode::kTowardZero, nullptr);
    ++total;
    if (got == want) {
      ++exact;
    } else {
      // The FP MAC truncates the aligned operand (no sticky/guard beyond the
      // register), so the hardware can differ from the infinitely precise
      // fused result by at most 1 ulp in code space.
      const std::int64_t diff = std::llabs(static_cast<long long>(posit::sign_extend(got, sw)) -
                                           posit::sign_extend(want, sw));
      ASSERT_LE(diff, 1) << "a=" << a << " b=" << b << " c=" << c << " got=" << got << " want=" << want;
    }
  }
  // The overwhelming majority must be bit-exact. (8,2) sees the most
  // alignment truncation due to its wide dynamic range.
  EXPECT_GT(static_cast<double>(exact) / total, 0.85);
}

TEST_P(PositMacTest, NarPoisons) {
  const auto [n, es, optimized] = GetParam();
  PositMacHarness hw(n, es, optimized);
  const posit::PositSpec sw{n, es};
  const std::uint32_t one = posit::from_double(1.0, sw);
  EXPECT_EQ(hw.run(sw.nar_code(), one, one), sw.nar_code());
  EXPECT_EQ(hw.run(one, sw.nar_code(), one), sw.nar_code());
  EXPECT_EQ(hw.run(one, one, sw.nar_code()), sw.nar_code());
}

TEST_P(PositMacTest, SimpleIdentities) {
  const auto [n, es, optimized] = GetParam();
  PositMacHarness hw(n, es, optimized);
  const posit::PositSpec sw{n, es};
  const std::uint32_t one = posit::from_double(1.0, sw);
  const std::uint32_t two = posit::from_double(2.0, sw);
  const std::uint32_t three = posit::from_double(3.0, sw);
  // 1*2+0 = 2 ; 2*3+0 = 6 ; 1*1+1 = 2 ; 2*2+(-3) = 1.
  EXPECT_EQ(hw.run(one, two, 0), two);
  EXPECT_EQ(hw.run(two, three, 0), posit::from_double(6.0, sw));
  EXPECT_EQ(hw.run(one, one, one), two);
  EXPECT_EQ(hw.run(two, two, posit::neg(three, sw)), one);
  EXPECT_EQ(hw.run(0, two, three), three);
}

INSTANTIATE_TEST_SUITE_P(
    Formats, PositMacTest,
    ::testing::Combine(::testing::Values(8, 16), ::testing::Values(1, 2), ::testing::Values(false, true)),
    [](const auto& info) {
      return "p" + std::to_string(std::get<0>(info.param)) + "_" + std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_opt" : "_orig");
    });

// ---------------------------------------------------------------------------
// Table V shape: posit MACs vs the FP32 MAC baseline.
// ---------------------------------------------------------------------------
TEST(TableVShape, Posit8MacIsMuchSmallerThanFp32) {
  const Netlist fp32 = make_fp_mac_netlist(FpFormat{10, 23});
  const Netlist p81 = make_posit_mac_netlist(PositHwSpec{8, 1}, true);
  EXPECT_LT(p81.total_area_um2(), fp32.total_area_um2() * 0.5);
}

TEST(TableVShape, Posit16MacIsSmallerThanFp32) {
  const Netlist fp32 = make_fp_mac_netlist(FpFormat{10, 23});
  const Netlist p161 = make_posit_mac_netlist(PositHwSpec{16, 1}, true);
  EXPECT_LT(p161.total_area_um2(), fp32.total_area_um2());
}

TEST(TableVShape, HigherEsIsSlightlyCheaperAtSameWidth) {
  // Table V: posit(8,2) < posit(8,1), posit(16,2) < posit(16,1) in both power
  // and area (higher es -> fewer mantissa bits -> smaller multiplier).
  const double a81 = make_posit_mac_netlist(PositHwSpec{8, 1}, true).total_area_um2();
  const double a82 = make_posit_mac_netlist(PositHwSpec{8, 2}, true).total_area_um2();
  const double a161 = make_posit_mac_netlist(PositHwSpec{16, 1}, true).total_area_um2();
  const double a162 = make_posit_mac_netlist(PositHwSpec{16, 2}, true).total_area_um2();
  EXPECT_LT(a82, a81);
  EXPECT_LT(a162, a161);
}

TEST(SectionIvClaim, CodecIsLargeFractionOfOriginalMacDelay) {
  // "the summation of the encoder delay and decoder delay consumes about 40%
  // of the total posit MAC delay" (for the original [6] codec).
  const MacDelayBreakdown b = posit_mac_delay_breakdown(PositHwSpec{16, 1}, false);
  const double codec_fraction = (b.decoder_ns + b.encoder_ns) / b.total_ns;
  EXPECT_GT(codec_fraction, 0.2);
  EXPECT_LT(codec_fraction, 0.65);
}

}  // namespace
}  // namespace pdnn::hw
