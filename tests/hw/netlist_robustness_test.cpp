// netlist_robustness_test.cpp — error handling and determinism of the
// hardware-model infrastructure.
#include <gtest/gtest.h>

#include "hw/analysis.hpp"
#include "hw/components.hpp"
#include "hw/posit_mac.hpp"

namespace pdnn::hw {
namespace {

TEST(NetlistRobustness, EvaluateRejectsWrongInputCount) {
  Netlist nl;
  nl.input("a");
  nl.input("b");
  EXPECT_THROW(nl.evaluate({1}), std::invalid_argument);
  EXPECT_THROW(nl.evaluate({1, 0, 1}), std::invalid_argument);
  EXPECT_NO_THROW(nl.evaluate({1, 0}));
}

TEST(NetlistRobustness, BusMuxRejectsWidthMismatch) {
  Netlist nl;
  const Bus a = nl.input_bus("a", 4);
  const Bus b = nl.input_bus("b", 5);
  const NetId s = nl.input("s");
  EXPECT_THROW(nl.bus_mux(s, a, b), std::invalid_argument);
}

TEST(NetlistRobustness, AdderRejectsWidthMismatch) {
  Netlist nl;
  const Bus a = nl.input_bus("a", 4);
  const Bus b = nl.input_bus("b", 6);
  EXPECT_THROW(ripple_adder(nl, a, b, nl.constant(false)), std::invalid_argument);
  EXPECT_THROW(kogge_stone_adder(nl, a, b, nl.constant(false)), std::invalid_argument);
  EXPECT_THROW(less_than(nl, a, b), std::invalid_argument);
}

TEST(NetlistRobustness, SetBusInputsRejectsNonInputNets) {
  Netlist nl;
  const Bus a = nl.input_bus("a", 2);
  const Bus derived{nl.land(a[0], a[1])};
  std::vector<std::uint8_t> inputs(2, 0);
  EXPECT_THROW(set_bus_inputs(derived, 1, inputs, nl), std::invalid_argument);
  EXPECT_NO_THROW(set_bus_inputs(a, 3, inputs, nl));
  EXPECT_EQ(inputs[0], 1);
  EXPECT_EQ(inputs[1], 1);
}

TEST(NetlistRobustness, DecoderRejectsWrongCodeWidth) {
  Netlist nl;
  const Bus narrow = nl.input_bus("code", 7);
  EXPECT_THROW(build_decoder(nl, PositHwSpec{8, 1}, narrow, true), std::invalid_argument);
}

TEST(NetlistRobustness, EncoderRejectsWrongFieldWidths) {
  Netlist nl;
  const PositHwSpec spec{8, 1};
  const Bus bad_exp = nl.input_bus("e", spec.exp_width() + 1);
  const Bus mant = nl.input_bus("m", spec.frac_width());
  EXPECT_THROW(build_encoder(nl, spec, nl.constant(false), nl.constant(false), nl.constant(false),
                             bad_exp, mant, true),
               std::invalid_argument);
}

TEST(NetlistRobustness, PowerAnalysisIsDeterministic) {
  const Netlist mac = make_posit_mac_netlist(PositHwSpec{8, 1}, true);
  const PowerReport a = analyze_power(mac, 750.0, 300, /*seed=*/42);
  const PowerReport b = analyze_power(mac, 750.0, 300, /*seed=*/42);
  EXPECT_EQ(a.dynamic_mw, b.dynamic_mw);
  EXPECT_EQ(a.toggles_per_cycle, b.toggles_per_cycle);
  const PowerReport c = analyze_power(mac, 750.0, 300, /*seed=*/43);
  EXPECT_NE(a.dynamic_mw, c.dynamic_mw) << "different stimulus, different estimate";
  // But estimates from different seeds agree to a few percent.
  EXPECT_NEAR(a.dynamic_mw / c.dynamic_mw, 1.0, 0.1);
}

TEST(NetlistRobustness, TimingReportExposesCriticalPath) {
  Netlist nl;
  const Bus a = nl.input_bus("a", 8);
  const Bus b = nl.input_bus("b", 8);
  const SumCarry sc = ripple_adder(nl, a, b, nl.constant(false));
  nl.mark_output(sc.carry_out, "c");
  const TimingReport tr = analyze_timing(nl);
  EXPECT_GT(tr.critical_delay_ns, 0.0);
  ASSERT_GE(tr.critical_path.size(), 8u) << "carry chain spans the word";
  EXPECT_EQ(tr.critical_path.back(), sc.carry_out);
}

TEST(NetlistRobustness, PipelineStageMath) {
  EXPECT_EQ(pipeline_stages(1.0, 750.0), 1);   // 1.33 ns budget
  EXPECT_EQ(pipeline_stages(1.34, 750.0), 2);
  EXPECT_EQ(pipeline_stages(2.6, 750.0), 2);
  EXPECT_EQ(pipeline_stages(2.7, 750.0), 3);
  EXPECT_EQ(pipeline_stages(0.0, 750.0), 1);
}

}  // namespace
}  // namespace pdnn::hw
