// accel_model_test.cpp — the accelerator traffic/energy model.
#include <gtest/gtest.h>

#include "hw/accel_model.hpp"

namespace pdnn::hw {
namespace {

TEST(LayerGeom, CountsMatchHandComputation) {
  // 3x3 conv, 16->32 channels, 32x32, stride 1.
  const LayerGeom g{"l", 16, 32, 32, 32, 3, 1};
  EXPECT_EQ(g.weight_count(), 32u * 16 * 9);
  EXPECT_EQ(g.activation_count(), 32u * 32 * 32);
  EXPECT_EQ(g.input_count(), 16u * 32 * 32);
  EXPECT_EQ(g.forward_macs(), 32u * 32 * 32 * 16 * 9);
  // Strided layer halves the output plane.
  const LayerGeom s{"s", 16, 32, 32, 32, 3, 2};
  EXPECT_EQ(s.out_h(), 16u);
  EXPECT_EQ(s.forward_macs(), 32u * 16 * 16 * 16 * 9);
}

TEST(ResNet18Geometry, PlausibleTotals) {
  const auto net = cifar_resnet18_geometry();
  EXPECT_GE(net.size(), 14u);  // conv1 + 12 block convs + downsamples + fc
  double total_fwd = 0.0, total_params = 0.0;
  for (const auto& l : net) {
    total_fwd += static_cast<double>(l.forward_macs());
    total_params += static_cast<double>(l.weight_count());
  }
  // Cifar-ResNet-18(16ch) is ~0.27M params / ~40M MACs per image.
  EXPECT_GT(total_params, 1e5);
  EXPECT_LT(total_params, 1e6);
  EXPECT_GT(total_fwd, 1e7);
  EXPECT_LT(total_fwd, 1e8);
}

TEST(TrainingStepCost, TrafficScalesWithBits) {
  const auto net = cifar_resnet18_geometry();
  EnergyParams p32, p16, p8;
  p32.bits_per_value = 32;
  p16.bits_per_value = 16;
  p8.bits_per_value = 8;
  p32.mac_energy_pj = p16.mac_energy_pj = p8.mac_energy_pj = 1.0;
  const auto c32 = training_step_cost(net, p32);
  const auto c16 = training_step_cost(net, p16);
  const auto c8 = training_step_cost(net, p8);
  // The 2-4x communication claim, exactly.
  EXPECT_DOUBLE_EQ(c32.traffic_bits / c16.traffic_bits, 2.0);
  EXPECT_DOUBLE_EQ(c32.traffic_bits / c8.traffic_bits, 4.0);
  // MAC counts are format independent.
  EXPECT_DOUBLE_EQ(c32.mac_count, c8.mac_count);
  // Memory energy scales with bits; compute does not.
  EXPECT_NEAR(c32.dram_energy_uj / c8.dram_energy_uj, 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(c32.compute_energy_uj, c8.compute_energy_uj);
}

TEST(TrainingStepCost, CheaperMacMeansCheaperCompute) {
  const auto net = cifar_resnet18_geometry();
  EnergyParams expensive, cheap;
  expensive.mac_energy_pj = 3.0;
  cheap.mac_energy_pj = 0.7;
  const auto ce = training_step_cost(net, expensive);
  const auto cc = training_step_cost(net, cheap);
  EXPECT_NEAR(ce.compute_energy_uj / cc.compute_energy_uj, 3.0 / 0.7, 1e-9);
  EXPECT_DOUBLE_EQ(ce.dram_energy_uj, cc.dram_energy_uj);
}

TEST(TrainingStepCost, BackwardCostsRoughlyTwiceForward) {
  const auto net = cifar_resnet18_geometry();
  double fwd = 0.0;
  for (const auto& l : net) fwd += static_cast<double>(l.forward_macs());
  EnergyParams p;
  p.mac_energy_pj = 1.0;
  const auto c = training_step_cost(net, p);
  EXPECT_GT(c.mac_count, 2.9 * fwd);
  EXPECT_LT(c.mac_count, 3.2 * fwd);
}

}  // namespace
}  // namespace pdnn::hw
