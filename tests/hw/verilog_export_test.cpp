// verilog_export_test.cpp — structural Verilog emission.
#include <gtest/gtest.h>

#include "hw/components.hpp"
#include "hw/posit_codec_hw.hpp"
#include "hw/verilog_export.hpp"

namespace pdnn::hw {
namespace {

std::size_t count_occurrences(const std::string& hay, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos; pos = hay.find(needle, pos + 1)) {
    ++count;
  }
  return count;
}

TEST(VerilogExport, AdderModuleStructure) {
  Netlist nl;
  const Bus a = nl.input_bus("a", 4);
  const Bus b = nl.input_bus("b", 4);
  const SumCarry sc = ripple_adder(nl, a, b, nl.constant(false));
  nl.mark_output_bus(sc.sum, "sum");
  nl.mark_output(sc.carry_out, "cout");

  const std::string v = to_verilog(nl, "adder4");
  EXPECT_NE(v.find("module adder4 ("), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_EQ(count_occurrences(v, "input wire "), 8u);
  EXPECT_EQ(count_occurrences(v, "output wire "), 5u);
  EXPECT_NE(v.find("output wire sum_0;"), std::string::npos);
  EXPECT_NE(v.find("output wire cout;"), std::string::npos);
  // Exactly one driver per net: every wire declared appears once on an
  // assign's left-hand side (inputs are driven by their port binds).
  EXPECT_EQ(count_occurrences(v, "assign n"), nl.gates().size());
}

TEST(VerilogExport, ConstantsEmitLiterals) {
  Netlist nl;
  const NetId a = nl.input("a");
  nl.mark_output(nl.lor(a, nl.lnot(nl.constant(true))), "y");
  const std::string v = to_verilog(nl, "m");
  EXPECT_NE(v.find("= 1'b0;"), std::string::npos);
  EXPECT_NE(v.find("= 1'b1;"), std::string::npos);
}

TEST(VerilogExport, GateOperatorsRendered) {
  Netlist nl;
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  const NetId s = nl.input("s");
  nl.mark_output(nl.lxnor(nl.lnand(a, b), nl.lnor(a, b)), "f");
  nl.mark_output(nl.mux(s, a, b), "m");
  const std::string v = to_verilog(nl, "ops");
  EXPECT_NE(v.find("~("), std::string::npos);   // nand/nor/xnor forms
  EXPECT_NE(v.find(" ? "), std::string::npos);  // mux ternary
}

TEST(VerilogExport, DecoderExportsWithSaneSize) {
  const Netlist dec = make_decoder_netlist(PositHwSpec{8, 1}, /*optimized=*/true);
  const std::string v = to_verilog(dec, "posit8_1_decoder_opt");
  EXPECT_NE(v.find("module posit8_1_decoder_opt"), std::string::npos);
  // One assign per gate plus one per port bind.
  const std::size_t assigns = count_occurrences(v, "assign ");
  EXPECT_EQ(assigns, dec.gates().size() + dec.inputs().size() + dec.outputs().size() -
                         /*kInput emits no gate assign*/ dec.inputs().size());
  EXPECT_NE(v.find("output wire eff_exp_0;"), std::string::npos);
  EXPECT_NE(v.find("output wire mantissa_0;"), std::string::npos);
}

TEST(VerilogExport, DuplicateOutputNamesDisambiguated) {
  Netlist nl;
  const NetId a = nl.input("a");
  nl.mark_output(a, "y");
  nl.mark_output(nl.lnot(a), "y");  // same name twice
  const std::string v = to_verilog(nl, "dup");
  EXPECT_NE(v.find("output wire y;"), std::string::npos);
  EXPECT_NE(v.find("output wire y_dup2;"), std::string::npos);
}

}  // namespace
}  // namespace pdnn::hw
