// verilog_export_test.cpp — structural Verilog emission.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "hw/components.hpp"
#include "hw/posit_codec_hw.hpp"
#include "hw/posit_mac.hpp"
#include "hw/verilog_export.hpp"

namespace pdnn::hw {
namespace {

std::size_t count_occurrences(const std::string& hay, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos; pos = hay.find(needle, pos + 1)) {
    ++count;
  }
  return count;
}

TEST(VerilogExport, AdderModuleStructure) {
  Netlist nl;
  const Bus a = nl.input_bus("a", 4);
  const Bus b = nl.input_bus("b", 4);
  const SumCarry sc = ripple_adder(nl, a, b, nl.constant(false));
  nl.mark_output_bus(sc.sum, "sum");
  nl.mark_output(sc.carry_out, "cout");

  const std::string v = to_verilog(nl, "adder4");
  EXPECT_NE(v.find("module adder4 ("), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_EQ(count_occurrences(v, "input wire "), 8u);
  EXPECT_EQ(count_occurrences(v, "output wire "), 5u);
  EXPECT_NE(v.find("output wire sum_0;"), std::string::npos);
  EXPECT_NE(v.find("output wire cout;"), std::string::npos);
  // Exactly one driver per net: every wire declared appears once on an
  // assign's left-hand side (inputs are driven by their port binds).
  EXPECT_EQ(count_occurrences(v, "assign n"), nl.gates().size());
}

TEST(VerilogExport, ConstantsEmitLiterals) {
  Netlist nl;
  const NetId a = nl.input("a");
  nl.mark_output(nl.lor(a, nl.lnot(nl.constant(true))), "y");
  const std::string v = to_verilog(nl, "m");
  EXPECT_NE(v.find("= 1'b0;"), std::string::npos);
  EXPECT_NE(v.find("= 1'b1;"), std::string::npos);
}

TEST(VerilogExport, GateOperatorsRendered) {
  Netlist nl;
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  const NetId s = nl.input("s");
  nl.mark_output(nl.lxnor(nl.lnand(a, b), nl.lnor(a, b)), "f");
  nl.mark_output(nl.mux(s, a, b), "m");
  const std::string v = to_verilog(nl, "ops");
  EXPECT_NE(v.find("~("), std::string::npos);   // nand/nor/xnor forms
  EXPECT_NE(v.find(" ? "), std::string::npos);  // mux ternary
}

TEST(VerilogExport, DecoderExportsWithSaneSize) {
  const Netlist dec = make_decoder_netlist(PositHwSpec{8, 1}, /*optimized=*/true);
  const std::string v = to_verilog(dec, "posit8_1_decoder_opt");
  EXPECT_NE(v.find("module posit8_1_decoder_opt"), std::string::npos);
  // One assign per gate plus one per port bind.
  const std::size_t assigns = count_occurrences(v, "assign ");
  EXPECT_EQ(assigns, dec.gates().size() + dec.inputs().size() + dec.outputs().size() -
                         /*kInput emits no gate assign*/ dec.inputs().size());
  EXPECT_NE(v.find("output wire eff_exp_0;"), std::string::npos);
  EXPECT_NE(v.find("output wire mantissa_0;"), std::string::npos);
}

TEST(VerilogExport, DuplicateOutputNamesDisambiguated) {
  Netlist nl;
  const NetId a = nl.input("a");
  nl.mark_output(a, "y");
  nl.mark_output(nl.lnot(a), "y");  // same name twice
  const std::string v = to_verilog(nl, "dup");
  EXPECT_NE(v.find("output wire y;"), std::string::npos);
  EXPECT_NE(v.find("output wire y_dup2;"), std::string::npos);
}


// ---------------------------------------------------------------------------
// Golden-file tests: the emitted Verilog for representative netlists is
// checked in under tests/hw/golden/. A refactor of the netlist builders or
// the exporter that changes the emitted text — even in formatting — fails
// here and forces a deliberate golden update. Regenerate with:
//   PDNN_UPDATE_GOLDEN=1 ./test_hw_verilog_export
// ---------------------------------------------------------------------------

std::string golden_path(const std::string& name) {
  return std::string(PDNN_GOLDEN_DIR) + "/" + name;
}

void check_against_golden(const std::string& got, const std::string& file) {
  const std::string path = golden_path(file);
  if (std::getenv("PDNN_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << got;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (run with PDNN_UPDATE_GOLDEN=1 to create)";
  std::stringstream want;
  want << in.rdbuf();
  // EXPECT_EQ on the full strings would dump both files on mismatch; compare
  // line by line for a readable first-divergence message instead.
  std::istringstream got_s(got), want_s(want.str());
  std::string got_line, want_line;
  std::size_t lineno = 0;
  while (true) {
    ++lineno;
    const bool g = static_cast<bool>(std::getline(got_s, got_line));
    const bool w = static_cast<bool>(std::getline(want_s, want_line));
    if (!g && !w) break;
    ASSERT_TRUE(g && w) << file << ": emitted Verilog has "
                        << (g ? "more" : "fewer") << " lines than golden (line " << lineno << ")";
    ASSERT_EQ(got_line, want_line) << file << ": first divergence at line " << lineno;
  }
}

TEST(VerilogGolden, Adder4) {
  Netlist nl;
  const Bus a = nl.input_bus("a", 4);
  const Bus b = nl.input_bus("b", 4);
  const SumCarry sc = ripple_adder(nl, a, b, nl.constant(false));
  nl.mark_output_bus(sc.sum, "sum");
  nl.mark_output(sc.carry_out, "cout");
  check_against_golden(to_verilog(nl, "adder4"), "adder4.v");
}

TEST(VerilogGolden, Posit8Decoder) {
  check_against_golden(
      to_verilog(make_decoder_netlist(PositHwSpec{8, 1}, /*optimized=*/false), "posit8_1_decoder"),
      "posit8_1_decoder.v");
}

TEST(VerilogGolden, Posit8DecoderOptimized) {
  check_against_golden(
      to_verilog(make_decoder_netlist(PositHwSpec{8, 1}, /*optimized=*/true), "posit8_1_decoder_opt"),
      "posit8_1_decoder_opt.v");
}

TEST(VerilogGolden, Posit8Encoder) {
  check_against_golden(
      to_verilog(make_encoder_netlist(PositHwSpec{8, 1}, /*optimized=*/false), "posit8_1_encoder"),
      "posit8_1_encoder.v");
}

TEST(VerilogGolden, Posit5Mac) {
  check_against_golden(
      to_verilog(make_posit_mac_netlist(PositHwSpec{5, 1}, /*optimized=*/true), "posit5_1_mac_opt"),
      "posit5_1_mac_opt.v");
}

}  // namespace
}  // namespace pdnn::hw
