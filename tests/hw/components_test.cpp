// components_test.cpp — netlist primitives and arithmetic blocks vs software.
#include <gtest/gtest.h>

#include <random>

#include "hw/analysis.hpp"
#include "hw/components.hpp"

namespace pdnn::hw {
namespace {

// Helper: run a single-output-bus netlist on a packed input value.
std::uint64_t run(const Netlist& nl, const std::vector<std::uint8_t>& inputs) {
  return nl.outputs_as_u64(nl.evaluate(inputs));
}

std::vector<std::uint8_t> pack_bits(std::uint64_t v, int width) {
  std::vector<std::uint8_t> out(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) out[static_cast<std::size_t>(i)] = (v >> i) & 1u;
  return out;
}

TEST(NetlistBasics, GatesEvaluate) {
  Netlist nl;
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  nl.mark_output(nl.land(a, b), "and");
  nl.mark_output(nl.lor(a, b), "or");
  nl.mark_output(nl.lxor(a, b), "xor");
  nl.mark_output(nl.lnand(a, b), "nand");
  nl.mark_output(nl.lnor(a, b), "nor");
  nl.mark_output(nl.lxnor(a, b), "xnor");
  nl.mark_output(nl.lnot(a), "not");
  for (int av = 0; av < 2; ++av) {
    for (int bv = 0; bv < 2; ++bv) {
      const auto vals = nl.evaluate({static_cast<std::uint8_t>(av), static_cast<std::uint8_t>(bv)});
      const std::uint64_t out = nl.outputs_as_u64(vals);
      EXPECT_EQ((out >> 0) & 1u, static_cast<unsigned>(av & bv));
      EXPECT_EQ((out >> 1) & 1u, static_cast<unsigned>(av | bv));
      EXPECT_EQ((out >> 2) & 1u, static_cast<unsigned>(av ^ bv));
      EXPECT_EQ((out >> 3) & 1u, static_cast<unsigned>(!(av & bv)));
      EXPECT_EQ((out >> 4) & 1u, static_cast<unsigned>(!(av | bv)));
      EXPECT_EQ((out >> 5) & 1u, static_cast<unsigned>(!(av ^ bv)));
      EXPECT_EQ((out >> 6) & 1u, static_cast<unsigned>(!av));
    }
  }
}

TEST(NetlistBasics, MuxSelects) {
  Netlist nl;
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  const NetId s = nl.input("s");
  nl.mark_output(nl.mux(s, a, b), "out");
  EXPECT_EQ(run(nl, {1, 0, 0}), 1u);  // sel=0 -> a
  EXPECT_EQ(run(nl, {1, 0, 1}), 0u);  // sel=1 -> b
}

TEST(NetlistBasics, ConstantFolding) {
  Netlist nl;
  const NetId a = nl.input("a");
  const std::size_t before = nl.gate_count();
  // All of these fold away without emitting logic cells.
  (void)nl.land(a, nl.constant(true));
  (void)nl.lor(a, nl.constant(false));
  (void)nl.lxor(a, nl.constant(false));
  (void)nl.mux(nl.constant(false), a, nl.constant(true));
  EXPECT_EQ(nl.gate_count(), before);
}

TEST(NetlistBasics, AreaAndGateCount) {
  Netlist nl;
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  nl.mark_output(nl.land(a, b), "o");
  EXPECT_EQ(nl.gate_count(), 1u);
  EXPECT_DOUBLE_EQ(nl.total_area_um2(), cell_params(CellKind::kAnd2).area_um2);
}

TEST(RippleAdder, ExhaustiveSmall) {
  Netlist nl;
  const Bus a = nl.input_bus("a", 4);
  const Bus b = nl.input_bus("b", 4);
  const SumCarry sc = ripple_adder(nl, a, b, nl.constant(false));
  nl.mark_output_bus(sc.sum, "sum");
  nl.mark_output(sc.carry_out, "cout");
  for (std::uint64_t av = 0; av < 16; ++av) {
    for (std::uint64_t bv = 0; bv < 16; ++bv) {
      std::vector<std::uint8_t> in = pack_bits(av, 4);
      const auto bbits = pack_bits(bv, 4);
      in.insert(in.end(), bbits.begin(), bbits.end());
      EXPECT_EQ(run(nl, in), av + bv) << av << "+" << bv;
    }
  }
}

TEST(Incrementer, Exhaustive) {
  Netlist nl;
  const Bus a = nl.input_bus("a", 5);
  const NetId inc = nl.input("inc");
  nl.mark_output_bus(incrementer(nl, a, inc), "out");
  for (std::uint64_t av = 0; av < 32; ++av) {
    for (std::uint64_t iv = 0; iv < 2; ++iv) {
      auto in = pack_bits(av, 5);
      in.push_back(static_cast<std::uint8_t>(iv));
      EXPECT_EQ(run(nl, in), (av + iv) & 31u);
    }
  }
}

TEST(Negate, TwosComplement) {
  Netlist nl;
  const Bus a = nl.input_bus("a", 6);
  nl.mark_output_bus(negate(nl, a), "out");
  for (std::uint64_t av = 0; av < 64; ++av) {
    EXPECT_EQ(run(nl, pack_bits(av, 6)), (-av) & 63u);
  }
}

TEST(ConditionalNegate, BothPolarities) {
  Netlist nl;
  const Bus a = nl.input_bus("a", 6);
  const NetId s = nl.input("s");
  nl.mark_output_bus(conditional_negate(nl, a, s), "out");
  for (std::uint64_t av = 0; av < 64; ++av) {
    auto in = pack_bits(av, 6);
    in.push_back(0);
    EXPECT_EQ(run(nl, in), av);
    in.back() = 1;
    EXPECT_EQ(run(nl, in), (-av) & 63u);
  }
}

TEST(Subtract, Exhaustive) {
  Netlist nl;
  const Bus a = nl.input_bus("a", 5);
  const Bus b = nl.input_bus("b", 5);
  nl.mark_output_bus(subtract(nl, a, b), "out");
  for (std::uint64_t av = 0; av < 32; ++av) {
    for (std::uint64_t bv = 0; bv < 32; ++bv) {
      auto in = pack_bits(av, 5);
      const auto bb = pack_bits(bv, 5);
      in.insert(in.end(), bb.begin(), bb.end());
      EXPECT_EQ(run(nl, in), (av - bv) & 31u);
    }
  }
}

TEST(Shifters, LeftAndRightExhaustive) {
  Netlist nl;
  const Bus in = nl.input_bus("in", 8);
  const Bus amt = nl.input_bus("amt", 4);
  nl.mark_output_bus(left_shifter(nl, in, amt), "left");
  Netlist nr;
  const Bus rin = nr.input_bus("in", 8);
  const Bus ramt = nr.input_bus("amt", 4);
  nr.mark_output_bus(right_shifter(nr, rin, ramt, nr.constant(false)), "right0");
  Netlist nr1;
  const Bus r1in = nr1.input_bus("in", 8);
  const Bus r1amt = nr1.input_bus("amt", 4);
  nr1.mark_output_bus(right_shifter(nr1, r1in, r1amt, nr1.constant(true)), "right1");

  std::mt19937_64 rng(3);
  for (int t = 0; t < 500; ++t) {
    const std::uint64_t v = rng() & 0xFF;
    const std::uint64_t s = rng() & 0xF;
    auto mk = [&](std::uint64_t val, std::uint64_t sh) {
      auto bits = pack_bits(val, 8);
      const auto sb = pack_bits(sh, 4);
      bits.insert(bits.end(), sb.begin(), sb.end());
      return bits;
    };
    EXPECT_EQ(run(nl, mk(v, s)), s >= 8 ? 0 : (v << s) & 0xFF);
    EXPECT_EQ(run(nr, mk(v, s)), s >= 8 ? 0 : v >> s);
    const std::uint64_t fill_mask = s >= 8 ? 0xFF : (0xFFull << (8 - s)) & 0xFF;
    EXPECT_EQ(run(nr1, mk(v, s)), s >= 8 ? 0xFF : ((v >> s) | fill_mask));
  }
}

TEST(Lzd, AllWidthsExhaustive) {
  for (int width : {1, 2, 3, 5, 7, 8, 15, 16}) {
    Netlist nl;
    const Bus in = nl.input_bus("in", width);
    const LzdResult r = leading_zero_detector(nl, in);
    nl.mark_output_bus(r.count, "count");
    nl.mark_output(r.all_zero, "all_zero");
    const std::uint64_t limit = width <= 12 ? (1ull << width) : 4096;
    std::mt19937_64 rng(7);
    for (std::uint64_t t = 0; t < limit; ++t) {
      const std::uint64_t v = width <= 12 ? t : (rng() & ((1ull << width) - 1));
      // Software count of leading zeros from the MSB.
      int want = 0;
      for (int i = width - 1; i >= 0 && ((v >> i) & 1u) == 0; --i) ++want;
      const auto vals = nl.evaluate(pack_bits(v, width));
      EXPECT_EQ(bus_value(r.count, vals), static_cast<std::uint64_t>(want)) << "w=" << width << " v=" << v;
      EXPECT_EQ(vals[static_cast<std::size_t>(r.all_zero)], v == 0 ? 1 : 0);
    }
  }
}

TEST(Lod, CountsLeadingOnes) {
  Netlist nl;
  const Bus in = nl.input_bus("in", 7);
  const LzdResult r = leading_one_detector(nl, in);
  nl.mark_output_bus(r.count, "count");
  for (std::uint64_t v = 0; v < 128; ++v) {
    int want = 0;
    for (int i = 6; i >= 0 && ((v >> i) & 1u) == 1; --i) ++want;
    const auto vals = nl.evaluate(pack_bits(v, 7));
    EXPECT_EQ(bus_value(r.count, vals), static_cast<std::uint64_t>(want)) << v;
  }
}

TEST(Multiplier, ExhaustiveSmallAndRandomLarge) {
  Netlist nl;
  const Bus a = nl.input_bus("a", 4);
  const Bus b = nl.input_bus("b", 4);
  nl.mark_output_bus(array_multiplier(nl, a, b), "p");
  for (std::uint64_t av = 0; av < 16; ++av) {
    for (std::uint64_t bv = 0; bv < 16; ++bv) {
      auto in = pack_bits(av, 4);
      const auto bb = pack_bits(bv, 4);
      in.insert(in.end(), bb.begin(), bb.end());
      EXPECT_EQ(run(nl, in), av * bv);
    }
  }
  Netlist big;
  const Bus ba = big.input_bus("a", 12);
  const Bus bb = big.input_bus("b", 12);
  big.mark_output_bus(array_multiplier(big, ba, bb), "p");
  std::mt19937_64 rng(11);
  for (int t = 0; t < 300; ++t) {
    const std::uint64_t av = rng() & 0xFFF;
    const std::uint64_t bv = rng() & 0xFFF;
    auto in = pack_bits(av, 12);
    const auto b2 = pack_bits(bv, 12);
    in.insert(in.end(), b2.begin(), b2.end());
    EXPECT_EQ(run(big, in), av * bv);
  }
}

TEST(Comparators, EqualsZeroAndLessThan) {
  Netlist nl;
  const Bus a = nl.input_bus("a", 4);
  const Bus b = nl.input_bus("b", 4);
  nl.mark_output(equals_zero(nl, a), "ez");
  nl.mark_output(less_than(nl, a, b), "lt");
  for (std::uint64_t av = 0; av < 16; ++av) {
    for (std::uint64_t bv = 0; bv < 16; ++bv) {
      auto in = pack_bits(av, 4);
      const auto b2 = pack_bits(bv, 4);
      in.insert(in.end(), b2.begin(), b2.end());
      const std::uint64_t out = run(nl, in);
      EXPECT_EQ(out & 1u, av == 0 ? 1u : 0u);
      EXPECT_EQ((out >> 1) & 1u, av < bv ? 1u : 0u);
    }
  }
}

TEST(Timing, AdderChainScalesLinearly) {
  const auto delay_of = [](int width) {
    Netlist nl;
    const Bus a = nl.input_bus("a", width);
    const Bus b = nl.input_bus("b", width);
    const SumCarry sc = ripple_adder(nl, a, b, nl.constant(false));
    nl.mark_output_bus(sc.sum, "s");
    nl.mark_output(sc.carry_out, "c");
    return analyze_timing(nl).critical_delay_ns;
  };
  const double d8 = delay_of(8);
  const double d16 = delay_of(16);
  const double d32 = delay_of(32);
  EXPECT_GT(d16, d8);
  EXPECT_GT(d32, d16);
  // Ripple growth is roughly linear in width.
  EXPECT_NEAR((d32 - d16) / (d16 - d8), 2.0, 0.5);
}

TEST(Timing, ShifterScalesLogarithmically) {
  const auto delay_of = [](int width, int amt_bits) {
    Netlist nl;
    const Bus in = nl.input_bus("in", width);
    const Bus amt = nl.input_bus("amt", amt_bits);
    nl.mark_output_bus(left_shifter(nl, in, amt), "o");
    return analyze_timing(nl).critical_delay_ns;
  };
  // One extra stage per doubled width: constant increments.
  const double d8 = delay_of(8, 3);
  const double d16 = delay_of(16, 4);
  const double d32 = delay_of(32, 5);
  EXPECT_NEAR(d16 - d8, d32 - d16, 1e-9);
}

TEST(Power, ScalesWithActivityAndFrequency) {
  Netlist nl;
  const Bus a = nl.input_bus("a", 8);
  const Bus b = nl.input_bus("b", 8);
  nl.mark_output_bus(array_multiplier(nl, a, b), "p");
  const PowerReport p750 = analyze_power(nl, 750.0, 500);
  const PowerReport p375 = analyze_power(nl, 375.0, 500);
  EXPECT_GT(p750.dynamic_mw, 0.0);
  EXPECT_NEAR(p750.dynamic_mw / p375.dynamic_mw, 2.0, 1e-6);
  EXPECT_GT(p750.toggles_per_cycle, 0.0);
  EXPECT_DOUBLE_EQ(p750.leakage_mw, p375.leakage_mw);
}

TEST(Power, BiggerCircuitsBurnMore) {
  const auto power_of = [](int width) {
    Netlist nl;
    const Bus a = nl.input_bus("a", width);
    const Bus b = nl.input_bus("b", width);
    nl.mark_output_bus(array_multiplier(nl, a, b), "p");
    return analyze_power(nl, 750.0, 500).total_mw();
  };
  EXPECT_GT(power_of(16), power_of(8));
  EXPECT_GT(power_of(8), power_of(4));
}

TEST(Characterize, ReportFieldsPopulated) {
  Netlist nl;
  const Bus a = nl.input_bus("a", 6);
  const Bus b = nl.input_bus("b", 6);
  const SumCarry sc = ripple_adder(nl, a, b, nl.constant(false));
  nl.mark_output_bus(sc.sum, "s");
  const CircuitReport r = characterize(nl, "adder6", 750.0, 200);
  EXPECT_EQ(r.name, "adder6");
  EXPECT_GT(r.gates, 0u);
  EXPECT_GT(r.area_um2, 0.0);
  EXPECT_GT(r.delay_ns, 0.0);
  EXPECT_GT(r.power_mw, 0.0);
}

}  // namespace
}  // namespace pdnn::hw
