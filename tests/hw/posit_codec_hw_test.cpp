// posit_codec_hw_test.cpp — gate-level decoder/encoder vs the software codec,
// bit for bit, plus the structural claims of the paper's optimization.
#include <gtest/gtest.h>

#include <random>

#include "hw/analysis.hpp"
#include "hw/posit_codec_hw.hpp"
#include "posit/codec.hpp"

namespace pdnn::hw {
namespace {

using posit::Decoded;
using posit::PositSpec;

struct DecoderHarness {
  PositHwSpec spec;
  Netlist nl;
  DecoderPorts ports;

  DecoderHarness(int n, int es, bool optimized) : spec{n, es} {
    const Bus code = nl.input_bus("code", n);
    ports = build_decoder(nl, spec, code, optimized);
    nl.mark_output(ports.sign, "sign");
    nl.mark_output(ports.is_zero, "zero");
    nl.mark_output(ports.is_nar, "nar");
    nl.mark_output_bus(ports.eff_exp, "exp");
    nl.mark_output_bus(ports.mantissa, "mant");
  }

  struct Out {
    bool sign, zero, nar;
    std::int64_t eff_exp;
    std::uint64_t mantissa;
  };

  Out decode(std::uint32_t code) {
    std::vector<std::uint8_t> in(static_cast<std::size_t>(spec.n));
    for (int i = 0; i < spec.n; ++i) in[static_cast<std::size_t>(i)] = (code >> i) & 1u;
    const auto vals = nl.evaluate(in);
    Out o;
    o.sign = vals[static_cast<std::size_t>(ports.sign)] != 0;
    o.zero = vals[static_cast<std::size_t>(ports.is_zero)] != 0;
    o.nar = vals[static_cast<std::size_t>(ports.is_nar)] != 0;
    std::uint64_t e = bus_value(ports.eff_exp, vals);
    // Sign-extend.
    const int ew = spec.exp_width();
    if (e & (1ull << (ew - 1))) e |= ~((1ull << ew) - 1);
    o.eff_exp = static_cast<std::int64_t>(e);
    o.mantissa = bus_value(ports.mantissa, vals);
    return o;
  }
};

class CodecHwTest : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(CodecHwTest, DecoderMatchesSoftwareExhaustively) {
  const auto [n, es, optimized] = GetParam();
  DecoderHarness hw(n, es, optimized);
  const PositSpec sw{n, es};
  const std::uint64_t total = sw.code_count();
  std::mt19937_64 rng(5);
  const bool exhaustive = n <= 16;
  const std::uint64_t trials = exhaustive ? total : 50000;
  for (std::uint64_t t = 0; t < trials; ++t) {
    const auto code = static_cast<std::uint32_t>(exhaustive ? t : (rng() & sw.mask()));
    const auto out = hw.decode(code);
    if (code == 0) {
      EXPECT_TRUE(out.zero);
      continue;
    }
    if (code == sw.nar_code()) {
      EXPECT_TRUE(out.nar);
      continue;
    }
    const Decoded d = posit::decode(code, sw);
    ASSERT_FALSE(out.zero) << code;
    ASSERT_FALSE(out.nar) << code;
    ASSERT_EQ(out.sign, d.neg) << code;
    ASSERT_EQ(out.eff_exp, d.scale) << "code " << code;
    // Software frac is fw bits; hardware mantissa is left-aligned frac_width.
    const std::uint64_t want_mant = static_cast<std::uint64_t>(d.frac)
                                    << (hw.spec.frac_width() - d.frac_width);
    ASSERT_EQ(out.mantissa, want_mant) << "code " << code;
  }
}

TEST_P(CodecHwTest, EncoderInvertsDecoderExhaustively) {
  const auto [n, es, optimized] = GetParam();
  const PositHwSpec spec{n, es};
  const PositSpec sw{n, es};

  // decoder -> encoder pipeline in one netlist.
  Netlist nl;
  const Bus code = nl.input_bus("code", n);
  const DecoderPorts dec = build_decoder(nl, spec, code, optimized);
  const EncoderPorts enc =
      build_encoder(nl, spec, dec.sign, dec.is_zero, dec.is_nar, dec.eff_exp, dec.mantissa, optimized);
  nl.mark_output_bus(enc.code_out, "out");

  std::mt19937_64 rng(9);
  const bool exhaustive = n <= 16;
  const std::uint64_t trials = exhaustive ? sw.code_count() : 50000;
  for (std::uint64_t t = 0; t < trials; ++t) {
    const auto c = static_cast<std::uint32_t>(exhaustive ? t : (rng() & sw.mask()));
    std::vector<std::uint8_t> in(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) in[static_cast<std::size_t>(i)] = (c >> i) & 1u;
    const auto vals = nl.evaluate(in);
    ASSERT_EQ(bus_value(enc.code_out, vals), c) << "round trip of code " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Formats, CodecHwTest,
    ::testing::Combine(::testing::Values(5, 8, 16), ::testing::Values(0, 1, 2),
                       ::testing::Values(false, true)),
    [](const auto& info) {
      return "p" + std::to_string(std::get<0>(info.param)) + "_" + std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_opt" : "_orig");
    });

// (32,3) sampled rather than exhaustive.
TEST(CodecHwLarge, Posit32_3RoundTripSampled) {
  const PositHwSpec spec{32, 3};
  const PositSpec sw{32, 3};
  for (const bool optimized : {false, true}) {
    Netlist nl;
    const Bus code = nl.input_bus("code", 32);
    const DecoderPorts dec = build_decoder(nl, spec, code, optimized);
    const EncoderPorts enc =
        build_encoder(nl, spec, dec.sign, dec.is_zero, dec.is_nar, dec.eff_exp, dec.mantissa, optimized);
    nl.mark_output_bus(enc.code_out, "out");
    std::mt19937_64 rng(13);
    for (int t = 0; t < 20000; ++t) {
      const auto c = static_cast<std::uint32_t>(rng());
      std::vector<std::uint8_t> in(32);
      for (int i = 0; i < 32; ++i) in[static_cast<std::size_t>(i)] = (c >> i) & 1u;
      const auto vals = nl.evaluate(in);
      ASSERT_EQ(bus_value(enc.code_out, vals), c) << "code " << c << " optimized=" << optimized;
    }
  }
}

// ---------------------------------------------------------------------------
// The paper's structural claims (Section IV-A / Table IV shape).
// ---------------------------------------------------------------------------
class CodecSpeedupTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(CodecSpeedupTest, OptimizedDecoderIsFaster) {
  const auto [n, es] = GetParam();
  const PositHwSpec spec{n, es};
  const double orig = analyze_timing(make_decoder_netlist(spec, false)).critical_delay_ns;
  const double opt = analyze_timing(make_decoder_netlist(spec, true)).critical_delay_ns;
  EXPECT_LT(opt, orig) << "optimized decoder must be faster";
  // Paper: decoder speeds up by 15-30%; allow a generous band.
  EXPECT_GT((orig - opt) / orig, 0.05);
  EXPECT_LT((orig - opt) / orig, 0.5);
}

TEST_P(CodecSpeedupTest, OptimizedEncoderIsFaster) {
  const auto [n, es] = GetParam();
  const PositHwSpec spec{n, es};
  const double orig = analyze_timing(make_encoder_netlist(spec, false)).critical_delay_ns;
  const double opt = analyze_timing(make_encoder_netlist(spec, true)).critical_delay_ns;
  EXPECT_LT(opt, orig) << "optimized encoder must be faster";
  EXPECT_GT((orig - opt) / orig, 0.05);
  EXPECT_LT((orig - opt) / orig, 0.6);
}

TEST_P(CodecSpeedupTest, OptimizedCostsMoreAreaNotLess) {
  // Duplicating the shifter trades area for delay: the optimized variants
  // should not be smaller.
  const auto [n, es] = GetParam();
  const PositHwSpec spec{n, es};
  EXPECT_GE(make_decoder_netlist(spec, true).total_area_um2(),
            make_decoder_netlist(spec, false).total_area_um2() * 0.95);
}

TEST_P(CodecSpeedupTest, DelayGrowsWithWordSize) {
  const auto [n, es] = GetParam();
  if (n >= 32) GTEST_SKIP();
  const PositHwSpec small{n, es};
  const PositHwSpec big{n * 2, es};
  EXPECT_LT(analyze_timing(make_decoder_netlist(small, true)).critical_delay_ns,
            analyze_timing(make_decoder_netlist(big, true)).critical_delay_ns);
}

INSTANTIATE_TEST_SUITE_P(TableIvFormats, CodecSpeedupTest,
                         ::testing::Values(std::pair{8, 0}, std::pair{16, 1}, std::pair{32, 3}),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param.first) + "_" +
                                  std::to_string(info.param.second);
                         });

}  // namespace
}  // namespace pdnn::hw
