// conv2d_backward_test.cpp — finite-difference gradient checks for the
// conv backward path now that dW is lowered onto the blocked matmul_acc.
// Covers odd shapes: stride 2, padding 1, non-square kernels (kernel_w), and
// the Conv2d module's dW/dX/db with the optional per-channel bias.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "nn/layers.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace pdnn::nn {
namespace {

using tensor::Conv2dGeom;
using tensor::Rng;
using tensor::Tensor;

/// Direct (un-lowered) convolution supporting rectangular kernels — the
/// oracle for the im2col/GEMM path.
Tensor conv_naive_rect(const Tensor& x, const Tensor& w, const Conv2dGeom& g) {
  const std::size_t n = x.shape()[0];
  Tensor out({n, g.out_c, g.out_h(), g.out_w()});
  for (std::size_t ni = 0; ni < n; ++ni)
    for (std::size_t o = 0; o < g.out_c; ++o)
      for (std::size_t y = 0; y < g.out_h(); ++y)
        for (std::size_t xx = 0; xx < g.out_w(); ++xx) {
          double acc = 0.0;
          for (std::size_t c = 0; c < g.in_c; ++c)
            for (std::size_t ky = 0; ky < g.kh(); ++ky)
              for (std::size_t kx = 0; kx < g.kw(); ++kx) {
                const long iy = static_cast<long>(y * g.stride + ky) - static_cast<long>(g.pad);
                const long ix = static_cast<long>(xx * g.stride + kx) - static_cast<long>(g.pad);
                if (iy < 0 || ix < 0 || iy >= static_cast<long>(g.in_h) ||
                    ix >= static_cast<long>(g.in_w))
                  continue;
                acc += static_cast<double>(
                           x.at(ni, c, static_cast<std::size_t>(iy), static_cast<std::size_t>(ix))) *
                       w[((o * g.in_c + c) * g.kh() + ky) * g.kw() + kx];
              }
          out.at(ni, o, y, xx) = static_cast<float>(acc);
        }
  return out;
}

class ConvRectGeomTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t, std::size_t>> {};

TEST_P(ConvRectGeomTest, ForwardMatchesNaiveAndGradientsCheckOut) {
  const auto [kh, kw, stride, pad] = GetParam();
  Rng rng(31);
  const Conv2dGeom g{2, 7, 6, 3, kh, stride, pad, kw};
  ASSERT_EQ(g.kh(), kh);
  ASSERT_EQ(g.kw(), kw);
  const Tensor x = Tensor::randn({2, 2, 7, 6}, rng);
  const Tensor w = Tensor::randn({3, 2, kh, kw}, rng);

  // Forward: the im2col + blocked-GEMM lowering against direct convolution.
  const Tensor got = conv2d_forward(x, w, g);
  const Tensor want = conv_naive_rect(x, w, g);
  ASSERT_EQ(got.shape(), want.shape());
  for (std::size_t i = 0; i < got.numel(); ++i) EXPECT_NEAR(got[i], want[i], 1e-4) << "y[" << i << "]";

  // Backward: loss = <conv(x, w), R>, so dY = R; compare analytic dX/dW to
  // central differences.
  const Tensor r = Tensor::randn(got.shape(), rng);
  const auto loss = [&](const Tensor& xx, const Tensor& ww) {
    const Tensor y = conv2d_forward(xx, ww, g);
    double acc = 0.0;
    for (std::size_t i = 0; i < y.numel(); ++i) acc += static_cast<double>(y[i]) * r[i];
    return acc;
  };

  Tensor gw = Tensor::zeros(w.shape());
  const Tensor gx = conv2d_backward(x, w, r, g, gw);

  const double eps = 1e-3;
  for (std::size_t i = 0; i < x.numel(); i += 5) {
    Tensor xp = x, xm = x;
    xp[i] += static_cast<float>(eps);
    xm[i] -= static_cast<float>(eps);
    const double num = (loss(xp, w) - loss(xm, w)) / (2 * eps);
    EXPECT_NEAR(gx[i], num, 5e-2) << "dX[" << i << "]";
  }
  for (std::size_t i = 0; i < w.numel(); i += 3) {
    Tensor wp = w, wm = w;
    wp[i] += static_cast<float>(eps);
    wm[i] -= static_cast<float>(eps);
    const double num = (loss(x, wp) - loss(x, wm)) / (2 * eps);
    EXPECT_NEAR(gw[i], num, 5e-2) << "dW[" << i << "]";
  }
}

// kh, kw, stride, pad: square and non-square kernels, strided and padded.
INSTANTIATE_TEST_SUITE_P(OddGeometries, ConvRectGeomTest,
                         ::testing::Values(std::tuple{3u, 3u, 2u, 1u},   // stride 2, pad 1
                                           std::tuple{3u, 2u, 2u, 1u},   // non-square, stride 2
                                           std::tuple{1u, 3u, 1u, 1u},   // 1xK row kernel
                                           std::tuple{5u, 3u, 1u, 2u},   // tall kernel, pad 2
                                           std::tuple{2u, 4u, 2u, 1u})); // even sizes

/// Module-level check: Conv2d with bias must produce dW, dX and db that all
/// match finite differences through the layer's own forward().
TEST(Conv2dModule, BiasGradientsMatchFiniteDifferences) {
  Rng rng(32);
  Conv2d conv("c", /*in_c=*/2, /*out_c=*/4, /*kernel=*/3, /*stride=*/2, /*pad=*/1, rng,
              /*with_bias=*/true);
  ASSERT_TRUE(conv.has_bias());
  ASSERT_EQ(conv.params().size(), 2u);
  // Non-zero bias so the forward path actually exercises the add.
  for (std::size_t i = 0; i < conv.bias().value.numel(); ++i)
    conv.bias().value[i] = static_cast<float>(rng.normal());

  const Tensor x = Tensor::randn({2, 2, 5, 5}, rng);
  const Tensor y0 = conv.forward(x, /*training=*/true);
  const Tensor r = Tensor::randn(y0.shape(), rng);

  const auto loss = [&](const Tensor& xx) {
    const Tensor y = conv.forward(xx, /*training=*/false);
    double acc = 0.0;
    for (std::size_t i = 0; i < y.numel(); ++i) acc += static_cast<double>(y[i]) * r[i];
    return acc;
  };

  conv.forward(x, true);  // refresh caches after the probe forwards
  const Tensor gx = conv.backward(r);

  const double eps = 1e-3;
  for (std::size_t i = 0; i < x.numel(); i += 3) {
    Tensor xp = x, xm = x;
    xp[i] += static_cast<float>(eps);
    xm[i] -= static_cast<float>(eps);
    EXPECT_NEAR(gx[i], (loss(xp) - loss(xm)) / (2 * eps), 5e-2) << "dX[" << i << "]";
  }
  for (std::size_t i = 0; i < conv.weight().value.numel(); i += 3) {
    const float keep = conv.weight().value[i];
    conv.weight().value[i] = keep + static_cast<float>(eps);
    const double lp = loss(x);
    conv.weight().value[i] = keep - static_cast<float>(eps);
    const double lm = loss(x);
    conv.weight().value[i] = keep;
    EXPECT_NEAR(conv.weight().grad[i], (lp - lm) / (2 * eps), 5e-2) << "dW[" << i << "]";
  }
  for (std::size_t i = 0; i < conv.bias().value.numel(); ++i) {
    const float keep = conv.bias().value[i];
    conv.bias().value[i] = keep + static_cast<float>(eps);
    const double lp = loss(x);
    conv.bias().value[i] = keep - static_cast<float>(eps);
    const double lm = loss(x);
    conv.bias().value[i] = keep;
    EXPECT_NEAR(conv.bias().grad[i], (lp - lm) / (2 * eps), 5e-2) << "db[" << i << "]";
  }
}

/// Without bias the layer keeps its historical single-param interface.
TEST(Conv2dModule, NoBiasByDefault) {
  Rng rng(33);
  Conv2d conv("c", 2, 3, 3, 1, 1, rng);
  EXPECT_FALSE(conv.has_bias());
  EXPECT_EQ(conv.params().size(), 1u);
}

}  // namespace
}  // namespace pdnn::nn
