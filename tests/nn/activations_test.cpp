// activations_test.cpp — Tanh/Sigmoid/Dropout/AvgPool layers.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.hpp"

namespace pdnn::nn {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

template <typename Layer>
void smooth_gradient_check(Layer& layer, const Tensor& x0) {
  Rng rng(42);
  const Tensor r = Tensor::randn(layer.forward(x0, true).shape(), rng);
  const auto loss = [&](const Tensor& x) {
    const Tensor y = layer.forward(x, true);
    double acc = 0.0;
    for (std::size_t i = 0; i < y.numel(); ++i) acc += static_cast<double>(y[i]) * r[i];
    return acc;
  };
  layer.forward(x0, true);
  const Tensor gx = layer.backward(r);
  const double eps = 1e-3;
  for (std::size_t i = 0; i < x0.numel(); ++i) {
    Tensor xp = x0, xm = x0;
    xp[i] += static_cast<float>(eps);
    xm[i] -= static_cast<float>(eps);
    EXPECT_NEAR(gx[i], (loss(xp) - loss(xm)) / (2 * eps), 2e-2) << i;
  }
}

TEST(TanhLayer, ForwardAndGradient) {
  Tanh t("t");
  Rng rng(1);
  const Tensor x = Tensor::randn({3, 5}, rng);
  const Tensor y = t.forward(x, false);
  for (std::size_t i = 0; i < y.numel(); ++i) EXPECT_FLOAT_EQ(y[i], std::tanh(x[i]));
  Tanh t2("t2");
  smooth_gradient_check(t2, Tensor::randn({2, 4}, rng));
}

TEST(SigmoidLayer, ForwardAndGradient) {
  Sigmoid s("s");
  Rng rng(2);
  const Tensor x = Tensor::randn({3, 5}, rng);
  const Tensor y = s.forward(x, false);
  for (std::size_t i = 0; i < y.numel(); ++i) {
    EXPECT_NEAR(y[i], 1.0f / (1.0f + std::exp(-x[i])), 1e-6);
    EXPECT_GT(y[i], 0.0f);
    EXPECT_LT(y[i], 1.0f);
  }
  Sigmoid s2("s2");
  smooth_gradient_check(s2, Tensor::randn({2, 4}, rng));
}

TEST(DropoutLayer, EvalIsIdentity) {
  Dropout d("d", 0.5f);
  Rng rng(3);
  const Tensor x = Tensor::randn({4, 4}, rng);
  const Tensor y = d.forward(x, /*training=*/false);
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(DropoutLayer, TrainingDropsAndRescales) {
  Dropout d("d", 0.4f);
  const Tensor x = Tensor::full({10000}, 1.0f);
  const Tensor y = d.forward(x, true);
  std::size_t zeros = 0;
  double sum = 0.0;
  const float keep_scale = 1.0f / 0.6f;
  for (std::size_t i = 0; i < y.numel(); ++i) {
    ASSERT_TRUE(y[i] == 0.0f || std::fabs(y[i] - keep_scale) < 1e-6) << y[i];
    if (y[i] == 0.0f) ++zeros;
    sum += y[i];
  }
  EXPECT_NEAR(static_cast<double>(zeros) / static_cast<double>(y.numel()), 0.4, 0.02);
  EXPECT_NEAR(sum / static_cast<double>(y.numel()), 1.0, 0.03) << "expectation preserved";
}

TEST(DropoutLayer, BackwardUsesSameMask) {
  Dropout d("d", 0.5f);
  const Tensor x = Tensor::full({1000}, 2.0f);
  const Tensor y = d.forward(x, true);
  Tensor gy({1000});
  gy.fill(1.0f);
  const Tensor gx = d.backward(gy);
  for (std::size_t i = 0; i < x.numel(); ++i) {
    // Gradient flows exactly where the activation survived.
    EXPECT_EQ(gx[i] == 0.0f, y[i] == 0.0f) << i;
  }
}

TEST(AvgPoolLayer, ForwardValuesAndBackwardSpread) {
  AvgPool2x2 pool("ap");
  Tensor x({1, 1, 4, 4});
  for (std::size_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  const Tensor y = pool.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), (0 + 1 + 4 + 5) / 4.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), (10 + 11 + 14 + 15) / 4.0f);

  Tensor gy({1, 1, 2, 2});
  gy.fill(1.0f);
  const Tensor gx = pool.backward(gy);
  for (std::size_t i = 0; i < gx.numel(); ++i) EXPECT_FLOAT_EQ(gx[i], 0.25f);
}

}  // namespace
}  // namespace pdnn::nn
