// layers_test.cpp — gradient checks and behavioral tests for every layer.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/layers.hpp"
#include "nn/resnet.hpp"

namespace pdnn::nn {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

// Scalar loss L = sum(y * R) used for all gradient checks.
double probe_loss(Module& m, const Tensor& x, const Tensor& r) {
  const Tensor y = m.forward(x, /*training=*/true);
  double acc = 0.0;
  for (std::size_t i = 0; i < y.numel(); ++i) acc += static_cast<double>(y[i]) * r[i];
  return acc;
}

// Central-difference check of dL/dx and all parameter gradients.
void gradient_check(Module& m, Tensor x, const Shape& out_shape, double tol = 5e-2,
                    std::size_t stride_x = 3, std::size_t stride_p = 3) {
  Rng rng(99);
  const Tensor r = Tensor::randn(out_shape, rng);

  for (auto* p : m.params()) p->zero_grad();
  const Tensor y = m.forward(x, true);
  ASSERT_EQ(y.shape(), out_shape);
  Tensor gy = r;
  const Tensor gx = m.backward(gy);

  const double eps = 1e-3;
  for (std::size_t i = 0; i < x.numel(); i += stride_x) {
    Tensor xp = x, xm = x;
    xp[i] += static_cast<float>(eps);
    xm[i] -= static_cast<float>(eps);
    const double num = (probe_loss(m, xp, r) - probe_loss(m, xm, r)) / (2 * eps);
    EXPECT_NEAR(gx[i], num, tol) << "dX[" << i << "]";
  }
  for (auto* p : m.params()) {
    for (std::size_t i = 0; i < p->value.numel(); i += stride_p) {
      const float keep = p->value[i];
      p->value[i] = keep + static_cast<float>(eps);
      const double up = probe_loss(m, x, r);
      p->value[i] = keep - static_cast<float>(eps);
      const double dn = probe_loss(m, x, r);
      p->value[i] = keep;
      const double num = (up - dn) / (2 * eps);
      EXPECT_NEAR(p->grad[i], num, tol) << p->name << "[" << i << "]";
    }
  }
}

TEST(Conv2dLayer, GradientCheck) {
  Rng rng(1);
  Conv2d conv("c", 2, 3, 3, 1, 1, rng);
  gradient_check(conv, Tensor::randn({2, 2, 5, 5}, rng), Shape{2, 3, 5, 5});
}

TEST(Conv2dLayer, StridedGradientCheck) {
  Rng rng(2);
  Conv2d conv("c", 2, 4, 3, 2, 1, rng);
  gradient_check(conv, Tensor::randn({1, 2, 8, 8}, rng), Shape{1, 4, 4, 4});
}

TEST(Conv2dLayer, OneByOneGradientCheck) {
  Rng rng(3);
  Conv2d conv("c", 3, 2, 1, 2, 0, rng);
  gradient_check(conv, Tensor::randn({1, 3, 6, 6}, rng), Shape{1, 2, 3, 3});
}

TEST(BatchNormLayer, GradientCheck) {
  Rng rng(4);
  BatchNorm2d bn("bn", 3);
  gradient_check(bn, Tensor::randn({4, 3, 3, 3}, rng), Shape{4, 3, 3, 3}, 5e-2, 2, 1);
}

TEST(BatchNormLayer, NormalizesInTraining) {
  Rng rng(5);
  BatchNorm2d bn("bn", 2);
  const Tensor x = Tensor::randn({8, 2, 4, 4}, rng, 3.0f);
  const Tensor y = bn.forward(x, true);
  // Per-channel output should be ~zero-mean unit-variance (gamma=1, beta=0).
  for (std::size_t c = 0; c < 2; ++c) {
    double sum = 0.0, sum_sq = 0.0;
    std::size_t count = 0;
    for (std::size_t n = 0; n < 8; ++n)
      for (std::size_t h = 0; h < 4; ++h)
        for (std::size_t w = 0; w < 4; ++w) {
          const double v = y.at(n, c, h, w);
          sum += v;
          sum_sq += v * v;
          ++count;
        }
    const double mean = sum / static_cast<double>(count);
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(sum_sq / static_cast<double>(count) - mean * mean, 1.0, 1e-3);
  }
}

TEST(BatchNormLayer, RunningStatsConvergeAndUsedInEval) {
  Rng rng(6);
  BatchNorm2d bn("bn", 1);
  // Feed a stream with mean 2, std 0.5.
  for (int i = 0; i < 200; ++i) {
    Tensor x = Tensor::randn({16, 1, 2, 2}, rng, 0.5f);
    x.apply([](float v) { return v + 2.0f; });
    bn.forward(x, true);
  }
  EXPECT_NEAR(bn.running_mean()[0], 2.0, 0.1);
  EXPECT_NEAR(bn.running_var()[0], 0.25, 0.05);
  // Eval mode uses the running stats: a batch at the stream mean maps to ~0.
  Tensor probe = Tensor::full({1, 1, 2, 2}, 2.0f);
  const Tensor y = bn.forward(probe, false);
  EXPECT_NEAR(y[0], 0.0, 0.1);
}

TEST(ReLULayer, ForwardBackward) {
  ReLU relu("r");
  Tensor x({4});
  x[0] = -1.0f;
  x[1] = 2.0f;
  x[2] = 0.0f;
  x[3] = 3.0f;
  const Tensor y = relu.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 2.0f);
  EXPECT_FLOAT_EQ(y[2], 0.0f);
  Tensor gy({4});
  gy.fill(1.0f);
  const Tensor gx = relu.backward(gy);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[1], 1.0f);
  EXPECT_FLOAT_EQ(gx[2], 0.0f);  // gradient is 0 at exactly 0 (x > 0 mask)
  EXPECT_FLOAT_EQ(gx[3], 1.0f);
}

TEST(LinearLayer, GradientCheck) {
  Rng rng(7);
  Linear fc("fc", 6, 4, rng);
  gradient_check(fc, Tensor::randn({3, 6}, rng), Shape{3, 4}, 5e-2, 1, 1);
}

TEST(LinearLayer, BiasApplied) {
  Rng rng(8);
  Linear fc("fc", 2, 2, rng);
  auto params = fc.params();
  // params[0] = weight, params[1] = bias.
  params[0]->value.fill(0.0f);
  params[1]->value[0] = 1.5f;
  params[1]->value[1] = -0.5f;
  const Tensor y = fc.forward(Tensor::zeros({1, 2}), false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), -0.5f);
}

TEST(ResidualBlockLayer, IdentityGradientCheck) {
  Rng rng(9);
  ResidualBlock block("rb", 4, 4, 1, rng);
  gradient_check(block, Tensor::randn({2, 4, 4, 4}, rng), Shape{2, 4, 4, 4}, 8e-2, 5, 7);
}

TEST(ResidualBlockLayer, DownsampleGradientCheck) {
  Rng rng(10);
  ResidualBlock block("rb", 4, 8, 2, rng);
  gradient_check(block, Tensor::randn({2, 4, 4, 4}, rng), Shape{2, 8, 2, 2}, 8e-2, 5, 9);
}

TEST(SequentialContainer, ComposesAndCollectsParams) {
  Rng rng(11);
  Sequential seq("net");
  seq.add(std::make_unique<Linear>("fc1", 4, 8, rng));
  seq.add(std::make_unique<ReLU>("r"));
  seq.add(std::make_unique<Linear>("fc2", 8, 2, rng));
  EXPECT_EQ(seq.params().size(), 4u);  // 2 weights + 2 biases
  gradient_check(seq, Tensor::randn({3, 4}, rng), Shape{3, 2}, 5e-2, 1, 3);
}

TEST(ResNetBuilder, ShapesAndParamNaming) {
  Rng rng(12);
  ResNetConfig cfg;
  cfg.blocks_per_stage = 1;
  cfg.base_channels = 4;
  auto net = cifar_resnet(cfg, rng);
  const Tensor x = Tensor::randn({2, 3, 16, 16}, rng);
  const Tensor y = net->forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{2, 10}));

  bool saw_conv1 = false, saw_stage3 = false, saw_fc = false;
  for (auto* p : net->params()) {
    if (p->name == "conv1.weight") saw_conv1 = true;
    if (p->name.rfind("stage3", 0) == 0) saw_stage3 = true;
    if (p->name == "fc.weight") saw_fc = true;
  }
  EXPECT_TRUE(saw_conv1);
  EXPECT_TRUE(saw_stage3);
  EXPECT_TRUE(saw_fc);

  // Backward runs end to end and produces a full-size input gradient.
  Tensor gy({2, 10});
  gy.fill(0.1f);
  const Tensor gx = net->backward(gy);
  EXPECT_EQ(gx.shape(), x.shape());
}

TEST(ResNetBuilder, DepthScalesWithBlocks) {
  Rng rng(13);
  ResNetConfig small, big;
  small.blocks_per_stage = 1;
  big.blocks_per_stage = 2;
  small.base_channels = big.base_channels = 4;
  const auto p_small = cifar_resnet(small, rng)->params().size();
  const auto p_big = cifar_resnet(big, rng)->params().size();
  EXPECT_GT(p_big, p_small);
}

TEST(MlpBuilder, ForwardShape) {
  Rng rng(14);
  auto net = mlp(2, 16, 3, 2, rng);
  const Tensor y = net->forward(Tensor::randn({5, 2}, rng), false);
  EXPECT_EQ(y.shape(), (Shape{5, 3}));
}

TEST(ModuleGraph, ChildrenExposeStructureAndVisitWalksPreOrder) {
  Rng rng(15);
  auto net = mlp(2, 8, 3, 1, rng);  // fc0, relu0, head
  const auto top = net->children();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0]->name(), "fc0");
  EXPECT_EQ(top[2]->name(), "head");
  EXPECT_TRUE(top[1]->children().empty()) << "leaf layers have no children";

  std::vector<std::string> order;
  net->visit([&order](Module& m) { order.push_back(m.name()); });
  const std::vector<std::string> want = {"mlp", "fc0", "relu0", "head"};
  EXPECT_EQ(order, want);
}

TEST(ModuleGraph, ResidualBlockChildrenCoverBothBranches) {
  Rng rng(16);
  ResidualBlock plain("p", 4, 4, 1, rng);
  EXPECT_EQ(plain.children().size(), 5u) << "identity skip: main path only";
  EXPECT_FALSE(plain.has_downsample());

  ResidualBlock down("d", 4, 8, 2, rng);
  const auto kids = down.children();
  ASSERT_EQ(kids.size(), 7u) << "strided block adds the downsample pair";
  EXPECT_TRUE(down.has_downsample());
  EXPECT_EQ(kids[5], down.down_conv());
  EXPECT_EQ(kids[6], down.down_bn());

  // params() aggregates over children() in the order serialization has
  // always used: conv1.w, bn1.{g,b}, conv2.w, bn2.{g,b}, down.{w,g,b}.
  const auto ps = down.params();
  ASSERT_EQ(ps.size(), 9u);
  EXPECT_EQ(ps[0]->name, "d.conv1.weight");
  EXPECT_EQ(ps[1]->name, "d.bn1.weight");
  EXPECT_EQ(ps[3]->name, "d.conv2.weight");
  EXPECT_EQ(ps[6]->name, "d.down.conv.weight");

  std::size_t visited = 0;
  down.visit([&visited](Module&) { ++visited; });
  EXPECT_EQ(visited, 8u) << "block itself plus seven children";
}

}  // namespace
}  // namespace pdnn::nn
