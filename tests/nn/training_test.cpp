// training_test.cpp — optimizer, schedule and end-to-end learning tests.
#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "nn/optimizer.hpp"
#include "nn/resnet.hpp"
#include "nn/trainer.hpp"

namespace pdnn::nn {
namespace {

using tensor::Rng;
using tensor::Tensor;

TEST(SgdMomentum, MinimizesQuadratic) {
  // Minimize f(w) = 0.5 * ||w - target||^2 by feeding grad = w - target.
  Param p;
  p.name = "w";
  p.value = Tensor({4});
  p.grad = Tensor({4});
  const float target[4] = {1.0f, -2.0f, 0.5f, 3.0f};
  SgdMomentum opt({&p}, {.lr = 0.1f, .momentum = 0.9f, .weight_decay = 0.0f});
  for (int iter = 0; iter < 300; ++iter) {
    opt.zero_grad();
    for (std::size_t i = 0; i < 4; ++i) p.grad[i] = p.value[i] - target[i];
    opt.step();
  }
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(p.value[i], target[i], 1e-3);
}

TEST(SgdMomentum, WeightDecayShrinksWeights) {
  Param p;
  p.value = Tensor::full({1}, 1.0f);
  p.grad = Tensor({1});
  p.decay = true;
  SgdMomentum opt({&p}, {.lr = 0.1f, .momentum = 0.0f, .weight_decay = 0.1f});
  opt.step();  // grad 0, decay pulls toward 0
  EXPECT_LT(p.value[0], 1.0f);

  Param q;  // decay=false params are exempt (BN gamma/beta)
  q.value = Tensor::full({1}, 1.0f);
  q.grad = Tensor({1});
  q.decay = false;
  SgdMomentum opt2({&q}, {.lr = 0.1f, .momentum = 0.0f, .weight_decay = 0.1f});
  opt2.step();
  EXPECT_FLOAT_EQ(q.value[0], 1.0f);
}

TEST(StepSchedule, PaperCifarSchedule) {
  // "initial 0.1, divided by 10 at epoch 60, 150 and 250".
  StepSchedule s{.base_lr = 0.1f, .drop_epochs = {60, 150, 250}, .factor = 10.0f};
  EXPECT_FLOAT_EQ(s.lr_at(0), 0.1f);
  EXPECT_FLOAT_EQ(s.lr_at(59), 0.1f);
  EXPECT_FLOAT_EQ(s.lr_at(60), 0.01f);
  EXPECT_FLOAT_EQ(s.lr_at(149), 0.01f);
  EXPECT_FLOAT_EQ(s.lr_at(150), 0.001f);
  EXPECT_FLOAT_EQ(s.lr_at(299), 0.0001f);
}

TEST(TrainerEndToEnd, MlpLearnsTwoMoons) {
  Rng rng(20);
  auto net = mlp(2, 24, 2, 2, rng);
  TrainConfig cfg;
  cfg.epochs = 40;
  cfg.batch_size = 32;
  cfg.sgd = {.lr = 0.1f, .momentum = 0.9f, .weight_decay = 0.0f};
  cfg.schedule = {.base_lr = 0.1f, .drop_epochs = {30}, .factor = 10.0f};
  cfg.warmup_epochs = 0;

  const auto data = data::make_two_moons(200, 0.15f, 7);
  Trainer trainer(*net, nullptr, cfg);
  const auto hist = trainer.fit(data.train.images, data.train.labels, data.test.images, data.test.labels);
  ASSERT_EQ(hist.size(), 40u);
  EXPECT_GT(hist.back().test_acc, 0.95f) << "two moons should be separable";
  EXPECT_LT(hist.back().train_loss, hist.front().train_loss);
}

TEST(TrainerEndToEnd, WarmupCallbackFiresOnce) {
  Rng rng(21);
  auto net = mlp(2, 8, 2, 1, rng);
  TrainConfig cfg;
  cfg.epochs = 4;
  cfg.warmup_epochs = 2;
  cfg.batch_size = 16;
  int fired = 0;
  std::size_t fired_at = 999;
  cfg.on_warmup_end = [&](Sequential&) { ++fired; };
  std::vector<std::size_t> epochs_seen;
  cfg.on_epoch_end = [&](std::size_t e, Sequential&) {
    epochs_seen.push_back(e);
    if (fired == 1 && fired_at == 999) fired_at = e;
  };
  const auto data = data::make_two_moons(40, 0.2f, 9);
  Trainer trainer(*net, nullptr, cfg);
  trainer.fit(data.train.images, data.train.labels, data.test.images, data.test.labels);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(fired_at, 2u) << "warm-up ends entering epoch 2";
  EXPECT_EQ(epochs_seen.size(), 4u);
}

TEST(TrainerEndToEnd, ResNetLearnsSynthCifarQuickly) {
  Rng rng(22);
  ResNetConfig rc;
  rc.blocks_per_stage = 1;
  rc.base_channels = 4;
  auto net = cifar_resnet(rc, rng);

  data::SynthCifarConfig dc;
  dc.classes = 4;
  dc.train_per_class = 40;
  dc.test_per_class = 15;
  dc.height = dc.width = 12;
  dc.noise = 0.25f;
  const auto data = data::make_synth_cifar(dc);

  TrainConfig cfg;
  cfg.epochs = 8;
  cfg.batch_size = 32;
  cfg.sgd = {.lr = 0.05f, .momentum = 0.9f, .weight_decay = 1e-4f};
  cfg.schedule = {.base_lr = 0.05f, .drop_epochs = {6}, .factor = 10.0f};
  cfg.warmup_epochs = 0;
  Trainer trainer(*net, nullptr, cfg);
  const auto hist = trainer.fit(data.train.images, data.train.labels, data.test.images, data.test.labels);
  EXPECT_GT(hist.back().test_acc, 0.55f) << "well above 25% chance on 4 classes";
}

TEST(TrainerEvaluate, MatchesManualCount) {
  Rng rng(23);
  auto net = mlp(2, 4, 2, 1, rng);
  const auto data = data::make_two_moons(20, 0.2f, 11);
  TrainConfig cfg;
  Trainer trainer(*net, nullptr, cfg);
  const float acc = trainer.evaluate(data.test.images, data.test.labels);
  EXPECT_GE(acc, 0.0f);
  EXPECT_LE(acc, 1.0f);
}

}  // namespace
}  // namespace pdnn::nn
