// serialize_test.cpp — checkpoint save/load, FP32 and posit-compressed.
#include <gtest/gtest.h>

#include <sstream>

#include "data/synthetic.hpp"
#include "nn/resnet.hpp"
#include "nn/serialize.hpp"
#include "quant/posit_transform.hpp"

namespace pdnn::nn {
namespace {

using tensor::Rng;
using tensor::Tensor;

TEST(Serialize, Fp32RoundTripBitExact) {
  Rng rng(1);
  ResNetConfig rc;
  rc.base_channels = 4;
  auto a = cifar_resnet(rc, rng);
  auto b = cifar_resnet(rc, rng);  // different random init

  std::stringstream ss;
  save_parameters(ss, *a);
  load_parameters(ss, *b);

  const auto pa = a->params();
  const auto pb = b->params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->name, pb[i]->name);
    for (std::size_t j = 0; j < pa[i]->value.numel(); ++j) {
      ASSERT_EQ(pa[i]->value[j], pb[i]->value[j]) << pa[i]->name << "[" << j << "]";
    }
  }
}

TEST(Serialize, LoadedModelComputesIdentically) {
  Rng rng(2);
  ResNetConfig rc;
  rc.base_channels = 4;
  auto a = cifar_resnet(rc, rng);
  auto b = cifar_resnet(rc, rng);
  std::stringstream ss;
  save_parameters(ss, *a);
  load_parameters(ss, *b);

  Rng drng(3);
  const Tensor x = Tensor::randn({2, 3, 12, 12}, drng);
  const Tensor ya = a->forward(x, false);
  const Tensor yb = b->forward(x, false);
  for (std::size_t i = 0; i < ya.numel(); ++i) ASSERT_EQ(ya[i], yb[i]);
}

TEST(Serialize, ArchitectureMismatchThrows) {
  Rng rng(4);
  ResNetConfig small, big;
  small.base_channels = 4;
  big.base_channels = 8;
  auto a = cifar_resnet(small, rng);
  auto b = cifar_resnet(big, rng);
  std::stringstream ss;
  save_parameters(ss, *a);
  EXPECT_THROW(load_parameters(ss, *b), std::runtime_error);
}

TEST(Serialize, CorruptStreamThrows) {
  Rng rng(5);
  auto net = mlp(2, 4, 2, 1, rng);
  std::stringstream bad("not a checkpoint at all");
  EXPECT_THROW(load_parameters(bad, *net), std::runtime_error);

  std::stringstream truncated;
  save_parameters(truncated, *net);
  std::string data = truncated.str();
  data.resize(data.size() / 2);
  std::stringstream half(data);
  EXPECT_THROW(load_parameters(half, *net), std::runtime_error);
}

TEST(Serialize, PositCheckpointQuantizesAndShrinks) {
  Rng rng(6);
  ResNetConfig rc;
  rc.base_channels = 8;
  auto a = cifar_resnet(rc, rng);
  auto b = cifar_resnet(rc, rng);

  std::stringstream ss;
  const std::size_t payload = save_parameters_posit(ss, *a, posit::PositSpec{8, 1});
  // 25% of the FP32 payload (Section IV claim).
  std::size_t fp32_payload = 0;
  for (const Param* p : a->params()) fp32_payload += p->value.numel() * sizeof(float);
  EXPECT_EQ(payload, fp32_payload / 4);

  load_parameters_posit(ss, *b);
  const auto pa = a->params();
  const auto pb = b->params();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (std::size_t j = 0; j < pa[i]->value.numel(); ++j) {
      // Loaded values are the nearest-even posit(8,1) grid points of the
      // originals.
      const float orig = pa[i]->value[j];
      const double want = posit::to_double(posit::from_double(orig, {8, 1}), {8, 1});
      ASSERT_EQ(pb[i]->value[j], static_cast<float>(want == want ? want : 0.0)) << pa[i]->name;
    }
  }
}

TEST(Serialize, FileRoundTrip) {
  Rng rng(7);
  auto a = mlp(2, 8, 2, 1, rng);
  auto b = mlp(2, 8, 2, 1, rng);
  const std::string path = "/tmp/pdnn_ckpt_test.bin";
  save_parameters_file(path, *a);
  load_parameters_file(path, *b);
  const auto pa = a->params();
  const auto pb = b->params();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (std::size_t j = 0; j < pa[i]->value.numel(); ++j) {
      ASSERT_EQ(pa[i]->value[j], pb[i]->value[j]);
    }
  }
  EXPECT_THROW(load_parameters_file("/nonexistent/nope.bin", *b), std::runtime_error);
}

}  // namespace
}  // namespace pdnn::nn
